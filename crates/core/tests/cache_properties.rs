//! Property battery for [`dg_core::GraphCache`]: after *any* sequence
//! of link flaps interleaved with lookups, every graph served from the
//! cache equals the from-scratch oracle ([`GraphCache::compute_uncached`])
//! for the current usable-link set.
//!
//! This is the proof obligation behind incremental invalidation: the
//! cache tracks, per entry, the edges whose usability the entry
//! depends on, and only recomputes entries a flap actually touches. If
//! the dependency sets were ever too small, some stale entry would
//! diverge from the oracle and these tests would catch it.

use dg_core::scheme::SchemeParams;
use dg_core::{CachedGraphKind, Flow, GraphCache, ServiceRequirement};
use dg_topology::generate::{feasible_deadline, representative_flows, GeneratorConfig};
use dg_topology::{EdgeId, Graph};
use proptest::prelude::*;
use std::sync::Arc;

/// One step of a flap/lookup interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Set a link's loss (index modulo edge count). Values straddle
    /// the 0.5 usability threshold so flips happen both ways.
    SetLoss(usize, f64),
    /// Serve a (flow, kind) from the cache and check it against the
    /// oracle (indices modulo the flow/kind counts).
    Lookup(usize, usize),
    /// Flush everything (routing-epoch advance).
    AdvanceEpoch,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..10_000, 0.0f64..1.0).prop_map(|(e, l)| Op::SetLoss(e, l)),
        (0usize..10_000, 0usize..10_000).prop_map(|(f, k)| Op::Lookup(f, k)),
        (0usize..50).prop_map(|_| Op::AdvanceEpoch),
    ]
}

/// A generated overlay, its sampled flows, and a feasible deadline.
fn scenario() -> impl Strategy<Value = (Arc<Graph>, Vec<Flow>, ServiceRequirement)> {
    (0usize..2, 20usize..=40, 0u64..1_000_000).prop_map(|(family, nodes, seed)| {
        let config = if family == 0 {
            GeneratorConfig::waxman(nodes, seed)
        } else {
            GeneratorConfig::ring_of_cliques(nodes, seed)
        };
        let graph = config.generate();
        let endpoints = representative_flows(&graph, 4, seed);
        assert!(!endpoints.is_empty(), "generated overlays have disjoint-routable flows");
        let deadline = feasible_deadline(&graph, &endpoints, 2.0);
        let flows = endpoints.into_iter().map(|(s, t)| Flow::new(s, t)).collect();
        (Arc::new(graph), flows, ServiceRequirement::new(deadline))
    })
}

/// Serves `(flow, kind)` from the cache and cross-checks the oracle.
/// Both sides must agree on success, and on success the graphs must be
/// identical.
fn check_lookup(
    cache: &GraphCache,
    flow: Flow,
    kind: CachedGraphKind,
    req: ServiceRequirement,
) -> Result<(), TestCaseError> {
    let cached = cache.live(flow, kind, req);
    let oracle = cache.compute_uncached(flow, kind, req);
    match (cached, oracle) {
        (Ok(c), Ok(o)) => prop_assert_eq!(c.as_ref(), &o, "{:?} {:?} diverged", flow, kind),
        (Err(_), Err(_)) => {}
        (c, o) => {
            return Err(TestCaseError::fail(format!(
                "cache/oracle disagree on feasibility for {flow:?} {kind:?}: \
                 cached={c:?} oracle={o:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// THE cache soundness property: under an arbitrary interleaving
    /// of loss updates, lookups, and epoch flushes, every served graph
    /// equals the from-scratch oracle for the instantaneous usable set.
    #[test]
    fn cached_graphs_always_match_the_oracle(
        (graph, flows, req) in scenario(),
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        for op in ops {
            match op {
                Op::SetLoss(e, loss) => {
                    cache.note_loss(EdgeId::new((e % edge_count) as u32), loss);
                }
                Op::Lookup(f, k) => {
                    let flow = flows[f % flows.len()];
                    let kind = CachedGraphKind::ALL[k % CachedGraphKind::ALL.len()];
                    check_lookup(&cache, flow, kind, req)?;
                }
                Op::AdvanceEpoch => cache.advance_epoch(),
            }
        }
        // Final sweep: every (flow, kind) agrees with the oracle in
        // the end state, hitting entries the random walk never read.
        for &flow in &flows {
            for kind in CachedGraphKind::ALL {
                check_lookup(&cache, flow, kind, req)?;
            }
        }
    }

    /// Interning: repeated lookups with no intervening flip of a
    /// depended-on edge return the *same* `Arc` (no recomputation), and
    /// a sub-threshold loss change never invalidates anything.
    #[test]
    fn unflipped_lookups_are_interned(
        (graph, flows, req) in scenario(),
        losses in proptest::collection::vec((0usize..10_000, 0.0f64..0.49), 1..20)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        let flow = flows[0];
        let first = cache.live(flow, CachedGraphKind::Robust, req)
            .expect("clean-graph robust graph is computable");
        // Sub-threshold losses: no usability flip, so no invalidation.
        for (e, loss) in losses {
            prop_assert!(!cache.note_loss(EdgeId::new((e % edge_count) as u32), loss));
        }
        let again = cache.live(flow, CachedGraphKind::Robust, req)
            .expect("still computable");
        prop_assert!(Arc::ptr_eq(&first, &again), "sub-threshold losses caused a recompute");
        prop_assert_eq!(cache.stats().live.invalidated, 0);
    }

    /// Healing: flap a set of links unusable, then restore them all;
    /// the cache must converge back to exactly the clean-graph result.
    #[test]
    fn healing_restores_the_clean_graph_result(
        (graph, flows, req) in scenario(),
        edges in proptest::collection::vec(0usize..10_000, 1..8)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        let mut clean: Vec<_> = Vec::new();
        for &flow in &flows {
            for kind in CachedGraphKind::ALL {
                clean.push(cache.live(flow, kind, req).ok().map(|g| g.as_ref().clone()));
            }
        }
        for &e in &edges {
            cache.note_loss(EdgeId::new((e % edge_count) as u32), 0.9);
        }
        // Touch the degraded state so healing has stale entries to kill.
        for &flow in &flows {
            let _ = cache.live(flow, CachedGraphKind::TwoDisjoint, req);
        }
        for &e in &edges {
            cache.note_loss(EdgeId::new((e % edge_count) as u32), 0.0);
        }
        let mut healed = clean.iter();
        for &flow in &flows {
            for kind in CachedGraphKind::ALL {
                let now = cache.live(flow, kind, req).ok().map(|g| g.as_ref().clone());
                prop_assert_eq!(&now, healed.next().unwrap(), "{:?} {:?}", flow, kind);
            }
        }
    }

    /// The baseline tier is pure interning: equal (flow, deadline)
    /// keys share one `Arc`, and link flaps never touch it.
    #[test]
    fn baseline_tier_ignores_flaps(
        (graph, flows, req) in scenario(),
        flaps in proptest::collection::vec((0usize..10_000, 0.0f64..1.0), 1..20)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        let flow = flows[0];
        let first = cache.baseline(flow, req).expect("flow is disjoint-routable");
        for (e, loss) in flaps {
            cache.note_loss(EdgeId::new((e % edge_count) as u32), loss);
        }
        let again = cache.baseline(flow, req).expect("baseline unaffected by flaps");
        prop_assert!(Arc::ptr_eq(&first, &again), "a flap invalidated the baseline tier");
    }
}
