//! Flows and their service requirements.

use dg_topology::{Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unidirectional application flow between two overlay sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flow {
    /// Sending site.
    pub source: NodeId,
    /// Receiving site.
    pub destination: NodeId,
}

impl Flow {
    /// Creates a flow from `source` to `destination`.
    pub const fn new(source: NodeId, destination: NodeId) -> Self {
        Flow { source, destination }
    }

    /// Human-readable label using site names, e.g. `"NYC->SJC"`.
    pub fn label(&self, graph: &Graph) -> String {
        format!("{}->{}", graph.node(self.source).name, graph.node(self.destination).name)
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.source, self.destination)
    }
}

/// The timeliness contract a flow must meet.
///
/// The paper's motivating applications need one-way delivery within
/// 65 ms (a 130 ms round trip across the US); that is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceRequirement {
    /// Maximum one-way latency for a packet to count as delivered.
    pub deadline: Micros,
}

impl ServiceRequirement {
    /// Creates a requirement with the given one-way deadline.
    pub const fn new(deadline: Micros) -> Self {
        ServiceRequirement { deadline }
    }
}

impl Default for ServiceRequirement {
    fn default() -> Self {
        ServiceRequirement { deadline: Micros::from_millis(65) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    #[test]
    fn labels_use_site_names() {
        let g = presets::north_america_12();
        let f = Flow::new(g.node_by_name("BOS").unwrap(), g.node_by_name("LAX").unwrap());
        assert_eq!(f.label(&g), "BOS->LAX");
        assert_eq!(f.to_string(), format!("{}->{}", f.source, f.destination));
    }

    #[test]
    fn default_requirement_is_65ms() {
        assert_eq!(ServiceRequirement::default().deadline, Micros::from_millis(65));
        assert_eq!(ServiceRequirement::new(Micros::from_millis(100)).deadline.as_millis(), 100);
    }

    #[test]
    fn serde_round_trip() {
        let f = Flow::new(NodeId::new(1), NodeId::new(2));
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<Flow>(&json).unwrap(), f);
    }
}
