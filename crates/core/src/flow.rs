//! Flows, their service requirements, and SLA service classes.

use crate::scheme::SchemeKind;
use dg_topology::{Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unidirectional application flow between two overlay sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flow {
    /// Sending site.
    pub source: NodeId,
    /// Receiving site.
    pub destination: NodeId,
}

impl Flow {
    /// Creates a flow from `source` to `destination`.
    pub const fn new(source: NodeId, destination: NodeId) -> Self {
        Flow { source, destination }
    }

    /// Human-readable label using site names, e.g. `"NYC->SJC"`.
    pub fn label(&self, graph: &Graph) -> String {
        format!("{}->{}", graph.node(self.source).name, graph.node(self.destination).name)
    }

    /// Tag bit marking a flow's destination as a multicast group id
    /// rather than a node id. Real node ids are dense indices far below
    /// this bit, so the two spaces cannot collide; the wire format
    /// carries flows without validating node ids, which makes group
    /// flows wire-transparent on protocol v4.
    pub const GROUP_BIT: u32 = 1 << 31;

    /// Creates a group flow from `source` to the multicast group
    /// `group_id`. The destination field carries the tagged group id.
    pub const fn group(source: NodeId, group_id: u32) -> Self {
        Flow { source, destination: NodeId::new(Self::GROUP_BIT | group_id) }
    }

    /// Whether this flow addresses a multicast group instead of a
    /// single destination node.
    pub const fn is_group(&self) -> bool {
        self.destination.index() as u32 & Self::GROUP_BIT != 0
    }

    /// The group id of a group flow, or `None` for a unicast flow.
    pub fn group_id(&self) -> Option<u32> {
        if self.is_group() {
            Some(self.destination.index() as u32 & !Self::GROUP_BIT)
        } else {
            None
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.source, self.destination)
    }
}

/// The timeliness contract a flow must meet.
///
/// The paper's motivating applications need one-way delivery within
/// 65 ms (a 130 ms round trip across the US); that is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceRequirement {
    /// Maximum one-way latency for a packet to count as delivered.
    pub deadline: Micros,
}

impl ServiceRequirement {
    /// Creates a requirement with the given one-way deadline.
    pub const fn new(deadline: Micros) -> Self {
        ServiceRequirement { deadline }
    }
}

impl Default for ServiceRequirement {
    fn default() -> Self {
        ServiceRequirement { deadline: Micros::from_millis(65) }
    }
}

/// Per-flow SLA service class: how much redundancy budget a flow is
/// entitled to, and how expendable its packets are under overload.
///
/// The class binds three things together: a *scheme preference* (how
/// much the flow spends on extra paths when the network is healthy), a
/// *deadline budget* (how late a packet may arrive and still count),
/// and a *drop priority* (which traffic an overloaded node sheds
/// first). Bulk is shed before timely, timely before surgical; control
/// frames are never shed at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlaClass {
    /// Throughput-oriented background traffic: cheapest scheme, widest
    /// deadline, first to be shed.
    Bulk,
    /// Latency-sensitive but loss-tolerant traffic (the common case).
    #[default]
    Timely,
    /// The paper's motivating remote-surgery/robotics class: targeted
    /// redundancy, tight deadline, shed last.
    Surgical,
}

impl SlaClass {
    /// All classes, in drop-priority order (shed-first first).
    pub const ALL: [SlaClass; 3] = [SlaClass::Bulk, SlaClass::Timely, SlaClass::Surgical];

    /// The routing scheme the class runs when the node has headroom.
    pub fn preferred_scheme(self) -> SchemeKind {
        match self {
            SlaClass::Bulk => SchemeKind::DynamicSinglePath,
            SlaClass::Timely => SchemeKind::DynamicTwoDisjoint,
            SlaClass::Surgical => SchemeKind::TargetedRedundancy,
        }
    }

    /// The class's default deadline budget.
    pub fn requirement(self) -> ServiceRequirement {
        match self {
            SlaClass::Bulk => ServiceRequirement::new(Micros::from_millis(250)),
            SlaClass::Timely => ServiceRequirement::new(Micros::from_millis(100)),
            SlaClass::Surgical => ServiceRequirement::default(),
        }
    }

    /// Shed order under overload: lower is shed first.
    pub fn drop_priority(self) -> u8 {
        match self {
            SlaClass::Bulk => 0,
            SlaClass::Timely => 1,
            SlaClass::Surgical => 2,
        }
    }

    /// The two-bit wire encoding carried in the data-frame flags byte.
    pub fn to_bits(self) -> u8 {
        self.drop_priority()
    }

    /// Decodes the two-bit wire encoding; `None` for the reserved
    /// pattern `3`.
    pub fn from_bits(bits: u8) -> Option<SlaClass> {
        match bits {
            0 => Some(SlaClass::Bulk),
            1 => Some(SlaClass::Timely),
            2 => Some(SlaClass::Surgical),
            _ => None,
        }
    }

    /// Short lowercase label, e.g. `"surgical"`.
    pub fn label(self) -> &'static str {
        match self {
            SlaClass::Bulk => "bulk",
            SlaClass::Timely => "timely",
            SlaClass::Surgical => "surgical",
        }
    }
}

impl fmt::Display for SlaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// Hand-written serde impls: classes serialize as their lowercase label
// (`"surgical"`), matching the CLI/config spelling, rather than the
// Rust variant name.
impl serde::ser::Serialize for SlaClass {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_owned())
    }
}

impl serde::de::Deserialize for SlaClass {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        match value {
            serde::Value::String(s) => match s.as_str() {
                "bulk" => Ok(SlaClass::Bulk),
                "timely" => Ok(SlaClass::Timely),
                "surgical" => Ok(SlaClass::Surgical),
                other => Err(serde::de::Error::custom(format!("unknown SLA class `{other}`"))),
            },
            other => Err(serde::de::Error::unexpected("SLA class string", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    #[test]
    fn labels_use_site_names() {
        let g = presets::north_america_12();
        let f = Flow::new(g.node_by_name("BOS").unwrap(), g.node_by_name("LAX").unwrap());
        assert_eq!(f.label(&g), "BOS->LAX");
        assert_eq!(f.to_string(), format!("{}->{}", f.source, f.destination));
    }

    #[test]
    fn default_requirement_is_65ms() {
        assert_eq!(ServiceRequirement::default().deadline, Micros::from_millis(65));
        assert_eq!(ServiceRequirement::new(Micros::from_millis(100)).deadline.as_millis(), 100);
    }

    #[test]
    fn group_flows_round_trip_ids_and_never_collide_with_unicast() {
        let f = Flow::group(NodeId::new(3), 42);
        assert!(f.is_group());
        assert_eq!(f.group_id(), Some(42));
        assert_eq!(f.source, NodeId::new(3));
        let unicast = Flow::new(NodeId::new(3), NodeId::new(11));
        assert!(!unicast.is_group());
        assert_eq!(unicast.group_id(), None);
    }

    #[test]
    fn serde_round_trip() {
        let f = Flow::new(NodeId::new(1), NodeId::new(2));
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(serde_json::from_str::<Flow>(&json).unwrap(), f);
    }

    #[test]
    fn sla_class_bits_round_trip_and_reject_reserved() {
        for class in SlaClass::ALL {
            assert_eq!(SlaClass::from_bits(class.to_bits()), Some(class));
        }
        assert_eq!(SlaClass::from_bits(3), None);
        assert_eq!(SlaClass::default(), SlaClass::Timely);
    }

    #[test]
    fn sla_class_ordering_matches_drop_priority() {
        // Shed-first classes sort first; deadlines tighten with class.
        assert!(SlaClass::Bulk < SlaClass::Timely && SlaClass::Timely < SlaClass::Surgical);
        assert!(
            SlaClass::Surgical.requirement().deadline < SlaClass::Timely.requirement().deadline
        );
        assert!(SlaClass::Timely.requirement().deadline < SlaClass::Bulk.requirement().deadline);
    }

    #[test]
    fn sla_class_serde_uses_lowercase_labels() {
        for class in SlaClass::ALL {
            let json = serde_json::to_string(&class).unwrap();
            assert_eq!(json, format!("\"{}\"", class.label()));
            assert_eq!(serde_json::from_str::<SlaClass>(&json).unwrap(), class);
        }
    }
}
