//! Problem detection around flow endpoints.
//!
//! The targeted-redundancy scheme switches dissemination graphs based
//! on *where* current loss is concentrated. This detector encodes the
//! paper's trigger: a **source problem** is loss on links leaving the
//! source that the flow currently relies on; a **destination problem**
//! is loss on links entering the destination that the flow relies on.

use crate::{DisseminationGraph, Flow};
use dg_topology::Graph;
use dg_trace::NetworkState;
use serde::{Deserialize, Serialize};

/// What the detector currently sees for a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProblemStatus {
    /// No endpoint problems.
    Clear,
    /// Loss concentrated on links leaving the source.
    SourceProblem,
    /// Loss concentrated on links entering the destination.
    DestinationProblem,
    /// Both endpoints affected.
    BothProblems,
}

impl ProblemStatus {
    /// Severity ordering used by the graph selector's hold-down logic:
    /// `Clear` < one endpoint < both endpoints.
    pub fn severity(self) -> u8 {
        match self {
            ProblemStatus::Clear => 0,
            ProblemStatus::SourceProblem | ProblemStatus::DestinationProblem => 1,
            ProblemStatus::BothProblems => 2,
        }
    }

    /// True if the source endpoint is implicated.
    pub fn source_affected(self) -> bool {
        matches!(self, ProblemStatus::SourceProblem | ProblemStatus::BothProblems)
    }

    /// True if the destination endpoint is implicated.
    pub fn destination_affected(self) -> bool {
        matches!(self, ProblemStatus::DestinationProblem | ProblemStatus::BothProblems)
    }
}

/// Stateless classifier of endpoint problems.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemDetector {
    /// Loss rate at which a link counts as problematic.
    pub loss_threshold: f64,
}

impl ProblemDetector {
    /// Creates a detector with the given loss threshold.
    pub fn new(loss_threshold: f64) -> Self {
        ProblemDetector { loss_threshold }
    }

    /// Classifies the current state for `flow`, considering only links
    /// the `reference` dissemination graph actually uses at each
    /// endpoint (loss on an unused link is not a problem worth
    /// switching for).
    pub fn classify(
        &self,
        graph: &Graph,
        flow: Flow,
        reference: &DisseminationGraph,
        state: &NetworkState,
    ) -> ProblemStatus {
        let src_problem = reference
            .forwarding_edges(graph, flow.source)
            .any(|e| state.condition(e).is_problematic(self.loss_threshold));
        let dst_problem = reference
            .edges()
            .iter()
            .filter(|&&e| graph.edge(e).dst == flow.destination)
            .any(|&e| state.condition(e).is_problematic(self.loss_threshold));
        match (src_problem, dst_problem) {
            (false, false) => ProblemStatus::Clear,
            (true, false) => ProblemStatus::SourceProblem,
            (false, true) => ProblemStatus::DestinationProblem,
            (true, true) => ProblemStatus::BothProblems,
        }
    }
}

impl Default for ProblemDetector {
    /// A 5 % loss threshold: well above healthy background loss, well
    /// below the severe problem events the paper's analysis targets.
    fn default() -> Self {
        ProblemDetector { loss_threshold: 0.05 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::algo::disjoint::{disjoint_pair, Disjointness};
    use dg_topology::{presets, Micros};
    use dg_trace::LinkCondition;

    fn setup() -> (Graph, Flow, DisseminationGraph, NetworkState) {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let (p1, p2) =
            disjoint_pair(&g, flow.source, flow.destination, Disjointness::Node).unwrap();
        let dg = DisseminationGraph::from_paths(&g, &[p1, p2]).unwrap();
        let state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        (g, flow, dg, state)
    }

    #[test]
    fn clean_state_is_clear() {
        let (g, flow, dg, state) = setup();
        let d = ProblemDetector::default();
        assert_eq!(d.classify(&g, flow, &dg, &state), ProblemStatus::Clear);
    }

    #[test]
    fn loss_on_used_source_edge_triggers() {
        let (g, flow, dg, mut state) = setup();
        let used: Vec<_> = dg.forwarding_edges(&g, flow.source).collect();
        state.set_condition(used[0], LinkCondition::new(0.5, Micros::ZERO));
        let d = ProblemDetector::default();
        assert_eq!(d.classify(&g, flow, &dg, &state), ProblemStatus::SourceProblem);
    }

    #[test]
    fn loss_on_unused_source_edge_does_not_trigger() {
        let (g, flow, dg, mut state) = setup();
        let unused = g
            .out_edges(flow.source)
            .iter()
            .copied()
            .find(|&e| !dg.contains(e))
            .expect("NYC has more out-edges than the pair uses");
        state.set_condition(unused, LinkCondition::down());
        let d = ProblemDetector::default();
        assert_eq!(d.classify(&g, flow, &dg, &state), ProblemStatus::Clear);
    }

    #[test]
    fn destination_and_both() {
        let (g, flow, dg, mut state) = setup();
        let into_dst: Vec<_> =
            dg.edges().iter().copied().filter(|&e| g.edge(e).dst == flow.destination).collect();
        assert!(!into_dst.is_empty());
        state.set_condition(into_dst[0], LinkCondition::new(0.2, Micros::ZERO));
        let d = ProblemDetector::default();
        assert_eq!(d.classify(&g, flow, &dg, &state), ProblemStatus::DestinationProblem);
        let from_src: Vec<_> = dg.forwarding_edges(&g, flow.source).collect();
        state.set_condition(from_src[0], LinkCondition::down());
        assert_eq!(d.classify(&g, flow, &dg, &state), ProblemStatus::BothProblems);
    }

    #[test]
    fn threshold_is_respected() {
        let (g, flow, dg, mut state) = setup();
        let used: Vec<_> = dg.forwarding_edges(&g, flow.source).collect();
        state.set_condition(used[0], LinkCondition::new(0.03, Micros::ZERO));
        assert_eq!(
            ProblemDetector::new(0.05).classify(&g, flow, &dg, &state),
            ProblemStatus::Clear
        );
        assert_eq!(
            ProblemDetector::new(0.02).classify(&g, flow, &dg, &state),
            ProblemStatus::SourceProblem
        );
    }

    #[test]
    fn severity_and_flags() {
        assert!(ProblemStatus::Clear.severity() < ProblemStatus::SourceProblem.severity());
        assert!(ProblemStatus::SourceProblem.severity() < ProblemStatus::BothProblems.severity());
        assert!(ProblemStatus::SourceProblem.source_affected());
        assert!(!ProblemStatus::SourceProblem.destination_affected());
        assert!(ProblemStatus::BothProblems.source_affected());
        assert!(ProblemStatus::BothProblems.destination_affected());
    }
}
