//! Single-source multicast dissemination graphs.
//!
//! The paper's dissemination graphs are strictly unicast src→dst; the
//! many-flow workload (one feed, many subscribers) amortises one send
//! across N receivers sharing a source. A [`MulticastGraph`] is the
//! multicast analogue of [`crate::DisseminationGraph`]: an overlay
//! subgraph rooted at one source on which every receiver in a *set*
//! must be reachable. Forwarding semantics are identical — the source
//! sends once per out-edge in the graph, every node receiving a packet
//! for the first time forwards it on its out-edges in the graph, and
//! any node in the receiver set additionally delivers locally.
//!
//! Construction (see `GraphCache::multicast`) comes in three flavours
//! ([`MulticastKind`]): the shared shortest-path **tree**, the tree
//! with **targeted** redundancy branches grafted only at receivers
//! whose incident links currently look problematic, and the **robust**
//! variant that grafts branches at every receiver.

use crate::cache::splitmix64;
use crate::{CoreError, DisseminationGraph};
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Which multicast construction to use (escalation order mirrors the
/// unicast targeted-redundancy modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MulticastKind {
    /// Union of the per-receiver tie-broken shortest usable paths —
    /// with unique tie-broken optima this union is a proper out-tree.
    Tree,
    /// The tree plus destination-problem-style redundancy branches
    /// grafted only at receivers with an unusable incident link.
    Targeted,
    /// The tree plus redundancy branches at *every* receiver — the
    /// multicast analogue of the unicast robust graph.
    Robust,
}

impl MulticastKind {
    /// All kinds, in escalation order.
    pub const ALL: [MulticastKind; 3] =
        [MulticastKind::Tree, MulticastKind::Targeted, MulticastKind::Robust];

    /// Short lowercase label, e.g. `"targeted"`.
    pub fn label(self) -> &'static str {
        match self {
            MulticastKind::Tree => "tree",
            MulticastKind::Targeted => "targeted",
            MulticastKind::Robust => "robust",
        }
    }
}

impl std::fmt::Display for MulticastKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Order-independent digest of a receiver set, used (together with the
/// source, kind, and deadline) as the cross-flow interning key: any
/// permutation or duplication of the same receivers digests
/// identically, so 10k flows sharing a source and receiver set hit one
/// cache entry. Collisions are guarded by comparing the stored
/// receiver set on every hit, so a (astronomically unlikely) digest
/// collision costs a recomputation, never a wrong graph.
pub fn receiver_digest(receivers: &[NodeId]) -> u64 {
    // Commutative mix: sum and xor of per-receiver hashes, finalized.
    let mut sum = 0u64;
    let mut xor = 0u64;
    let mut n = 0u64;
    for &r in receivers {
        let h = splitmix64(r.index() as u64 + 1);
        sum = sum.wrapping_add(h);
        xor ^= h.rotate_left(17);
        n += 1;
    }
    splitmix64(sum ^ xor.rotate_left(32) ^ n)
}

/// A single-source, multi-receiver dissemination graph.
///
/// # Invariants
///
/// Construction normalizes exactly like [`DisseminationGraph`]: edges
/// whose tail is unreachable from the source within the subgraph are
/// pruned, the rest are sorted and deduplicated, and *every* receiver
/// must be reachable. Receivers are sorted, deduplicated, never empty,
/// and never contain the source. Two graphs compare equal iff their
/// normalized edge sets, source, and receiver sets match.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MulticastGraph {
    source: NodeId,
    receivers: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl MulticastGraph {
    /// Builds a multicast graph from an edge set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MismatchedEndpoints`] when the receiver set
    /// is empty (after dropping the source from it),
    /// [`CoreError::Unreachable`] when some receiver cannot be reached
    /// from the source within the edge set, and topology errors for
    /// invalid ids.
    pub fn new(
        graph: &Graph,
        source: NodeId,
        receivers: Vec<NodeId>,
        edges: Vec<EdgeId>,
    ) -> Result<Self, CoreError> {
        graph.check_node(source)?;
        let mut receivers = receivers;
        for &r in &receivers {
            graph.check_node(r)?;
        }
        receivers.retain(|&r| r != source);
        receivers.sort();
        receivers.dedup();
        if receivers.is_empty() {
            return Err(CoreError::MismatchedEndpoints);
        }
        for &e in &edges {
            graph.check_edge(e)?;
        }
        let member: HashSet<EdgeId> = edges.iter().copied().collect();
        let mut reachable = HashSet::from([source]);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &e in graph.out_edges(u) {
                if member.contains(&e) {
                    let v = graph.edge(e).dst;
                    if reachable.insert(v) {
                        queue.push_back(v);
                    }
                }
            }
        }
        if let Some(&missed) = receivers.iter().find(|r| !reachable.contains(r)) {
            return Err(CoreError::Unreachable { source, destination: missed });
        }
        let mut kept: Vec<EdgeId> =
            member.into_iter().filter(|&e| reachable.contains(&graph.edge(e).src)).collect();
        kept.sort();
        Ok(MulticastGraph { source, receivers, edges: kept })
    }

    /// The shared source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The receiver set, sorted and deduplicated.
    pub fn receivers(&self) -> &[NodeId] {
        &self.receivers
    }

    /// The normalized edge set, sorted by id.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// A multicast graph always connects the source to at least one
    /// receiver, so it always has edges; always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `edge` is part of the graph.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// True if `node` is in the receiver set.
    pub fn contains_receiver(&self, node: NodeId) -> bool {
        self.receivers.binary_search(&node).is_ok()
    }

    /// The interning key component for this graph's receiver set.
    pub fn digest(&self) -> u64 {
        receiver_digest(&self.receivers)
    }

    /// Edges on which `node` forwards packets of this group.
    pub fn forwarding_edges<'a>(
        &'a self,
        graph: &'a Graph,
        node: NodeId,
    ) -> impl Iterator<Item = EdgeId> + 'a {
        self.edges.iter().copied().filter(move |&e| graph.edge(e).src == node)
    }

    /// The paper's cost metric over the whole group: packets sent per
    /// message — the amortisation win is that this is paid once for N
    /// receivers instead of N times.
    pub fn cost(&self, graph: &Graph) -> u64 {
        graph.edge_set_cost(self.edges.iter().copied())
    }

    /// Latency of the fastest route to `receiver` through the graph at
    /// baseline conditions, or `Micros::MAX` if `receiver` is not a
    /// member.
    pub fn best_latency(&self, graph: &Graph, receiver: NodeId) -> Micros {
        if !self.contains_receiver(receiver) {
            return Micros::MAX;
        }
        dg_topology::algo::dijkstra::shortest_path_filtered(graph, self.source, receiver, |e| {
            self.contains(e)
        })
        .map(|p| p.latency(graph))
        .unwrap_or(Micros::MAX)
    }

    /// The unicast [`DisseminationGraph`] a single member receiver
    /// observes: the same edge set re-normalized against `receiver` as
    /// the destination. With one receiver this is exactly the group's
    /// graph, which is what pins the single-flow fast path byte-equal
    /// to the unicast path.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unreachable`] when `receiver` is not a member.
    pub fn unicast_view(
        &self,
        graph: &Graph,
        receiver: NodeId,
    ) -> Result<DisseminationGraph, CoreError> {
        if !self.contains_receiver(receiver) {
            return Err(CoreError::Unreachable { source: self.source, destination: receiver });
        }
        DisseminationGraph::new(graph, self.source, receiver, self.edges.clone())
    }

    /// Serializes membership as a bitmask over dense edge ids — the
    /// same LSB-first wire format as
    /// [`DisseminationGraph::to_bitmask`], so group packets reuse the
    /// unicast forwarding path unchanged.
    pub fn to_bitmask(&self, edge_count: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; edge_count.div_ceil(8)];
        for &e in &self.edges {
            bytes[e.index() / 8] |= 1 << (e.index() % 8);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::algo::dijkstra;
    use dg_topology::presets;

    fn setup() -> (Graph, NodeId, Vec<NodeId>) {
        let g = presets::north_america_12();
        let s = g.node_by_name("NYC").unwrap();
        let rs = ["SJC", "SEA", "LAX"].iter().map(|n| g.node_by_name(n).unwrap()).collect();
        (g, s, rs)
    }

    fn tree_edges(g: &Graph, s: NodeId, receivers: &[NodeId]) -> Vec<EdgeId> {
        receivers
            .iter()
            .flat_map(|&r| dijkstra::shortest_path(g, s, r).unwrap().edges().to_vec())
            .collect()
    }

    #[test]
    fn spans_all_receivers_and_normalizes() {
        let (g, s, rs) = setup();
        let edges = tree_edges(&g, s, &rs);
        let mg = MulticastGraph::new(&g, s, rs.clone(), edges).unwrap();
        assert_eq!(mg.source(), s);
        let mut sorted = rs.clone();
        sorted.sort();
        assert_eq!(mg.receivers(), sorted.as_slice());
        for &r in &rs {
            assert!(mg.contains_receiver(r));
            assert!(mg.best_latency(&g, r) < Micros::MAX);
        }
        assert!(!mg.is_empty());
        // Edges are sorted and deduplicated.
        let mut e = mg.edges().to_vec();
        e.dedup();
        assert_eq!(e.as_slice(), mg.edges());
        assert!(mg.edges().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn missing_receiver_is_rejected() {
        let (g, s, rs) = setup();
        // A path to only the first receiver cannot span the others.
        let edges = dijkstra::shortest_path(&g, s, rs[0]).unwrap().edges().to_vec();
        let err = MulticastGraph::new(&g, s, rs.clone(), edges).unwrap_err();
        assert!(matches!(err, CoreError::Unreachable { .. }));
    }

    #[test]
    fn empty_receiver_set_is_rejected() {
        let (g, s, _) = setup();
        assert_eq!(MulticastGraph::new(&g, s, vec![], vec![]), Err(CoreError::MismatchedEndpoints));
        // The source itself is dropped from the receiver set.
        assert_eq!(
            MulticastGraph::new(&g, s, vec![s], vec![]),
            Err(CoreError::MismatchedEndpoints)
        );
    }

    #[test]
    fn digest_is_order_independent_and_duplication_sensitive_only_to_set() {
        let (g, s, rs) = setup();
        let edges = tree_edges(&g, s, &rs);
        let a = MulticastGraph::new(&g, s, rs.clone(), edges.clone()).unwrap();
        let mut shuffled = rs.clone();
        shuffled.reverse();
        shuffled.push(rs[0]); // duplicate member
        let b = MulticastGraph::new(&g, s, shuffled, edges).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(receiver_digest(a.receivers()), a.digest());
        // A different set digests differently.
        let other = vec![rs[0]];
        assert_ne!(receiver_digest(&other), a.digest());
    }

    #[test]
    fn unicast_view_of_single_receiver_is_the_whole_graph() {
        let (g, s, rs) = setup();
        let one = vec![rs[0]];
        let edges = tree_edges(&g, s, &one);
        let mg = MulticastGraph::new(&g, s, one.clone(), edges).unwrap();
        let view = mg.unicast_view(&g, rs[0]).unwrap();
        assert_eq!(view.edges(), mg.edges());
        assert_eq!(view.source(), s);
        assert_eq!(view.destination(), rs[0]);
        assert!(mg.unicast_view(&g, s).is_err());
    }

    #[test]
    fn bitmask_matches_unicast_format() {
        let (g, s, rs) = setup();
        let edges = tree_edges(&g, s, &rs);
        let mg = MulticastGraph::new(&g, s, rs, edges).unwrap();
        let mask = mg.to_bitmask(g.edge_count());
        assert_eq!(mask.len(), g.edge_count().div_ceil(8));
        for e in g.edges() {
            let bit = mask[e.index() / 8] & (1 << (e.index() % 8)) != 0;
            assert_eq!(bit, mg.contains(e));
        }
    }

    #[test]
    fn serde_round_trip() {
        let (g, s, rs) = setup();
        let edges = tree_edges(&g, s, &rs);
        let mg = MulticastGraph::new(&g, s, rs, edges).unwrap();
        let json = serde_json::to_string(&mg).unwrap();
        assert_eq!(serde_json::from_str::<MulticastGraph>(&json).unwrap(), mg);
    }
}
