//! Interned, incrementally-invalidated dissemination-graph cache.
//!
//! Precomputing dissemination graphs dominates route-setup cost once
//! overlays grow past the paper's 12 sites. [`GraphCache`] keeps two
//! tiers of precomputed results on top of the generic
//! [`dg_topology::cache::PrecomputeCache`]:
//!
//! - **Baseline bundles** ([`GraphCache::baseline`]): the four
//!   targeted-redundancy graphs of a flow, computed exactly as the
//!   schemes themselves compute them (topology-only, no link state)
//!   and interned behind an [`Arc`]. Every scheme instance for the
//!   same `(flow, deadline)` shares one computation; these entries
//!   only flush when the topology epoch advances.
//! - **Live graphs** ([`GraphCache::live`]): usability-aware variants
//!   computed over the subgraph of links whose reported loss is below
//!   the unusable threshold. Each entry records the edges its
//!   computation *selected* plus every edge that was unusable at
//!   compute time; a usability flip on any of those edges — and only
//!   those — evicts it ([`GraphCache::note_loss`]).
//!
//! The live dependency rule is what makes incremental invalidation
//! sound: a *usable but unselected* edge can change condition freely
//! without invalidating, because (a) the computation never reads
//! condition values, only the usable/unusable partition, and (b)
//! removing an edge that an optimal solution does not use cannot
//! change that optimum. To keep (b) airtight under latency ties, every
//! internal shortest-path/disjoint-pair search runs on tie-broken
//! weights (`latency × 2⁴² + hash(edge)`), making the optimum unique,
//! so the cached value is a pure function of the usable-edge
//! partition. The `cache_properties` proptest drives random flap
//! sequences against [`GraphCache::compute_uncached`] as a
//! from-scratch oracle to enforce exactly this.

use crate::mgraph::{receiver_digest, MulticastGraph, MulticastKind};
use crate::scheme::{
    build_scheme, RoutingScheme, SchemeKind, SchemeParams, StaticTwoDisjoint, TargetedGraphs,
    TargetedRedundancy,
};
use crate::{CoreError, DisseminationGraph, Flow, ServiceRequirement};
use dg_topology::algo::disjoint::k_disjoint_paths_weighted;
use dg_topology::algo::{dijkstra, reach};
use dg_topology::cache::{CacheStats, EdgeSet, PrecomputeCache};
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Which cached dissemination graph of a flow to fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CachedGraphKind {
    /// The two-disjoint-path graph.
    TwoDisjoint,
    /// The source-problem graph.
    SourceProblem,
    /// The destination-problem graph.
    DestinationProblem,
    /// The robust (union) graph.
    Robust,
}

impl CachedGraphKind {
    /// All four kinds, in escalation order.
    pub const ALL: [CachedGraphKind; 4] = [
        CachedGraphKind::TwoDisjoint,
        CachedGraphKind::SourceProblem,
        CachedGraphKind::DestinationProblem,
        CachedGraphKind::Robust,
    ];
}

/// Counter snapshot across all cache tiers (see [`GraphCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct GraphCacheStats {
    /// Baseline-bundle tier counters.
    pub baseline: CacheStats,
    /// Live-graph tier counters.
    pub live: CacheStats,
    /// Multicast (cross-flow interning) tier counters.
    pub multicast: CacheStats,
    /// Live entries currently cached.
    pub live_entries: usize,
    /// Baseline bundles currently cached.
    pub baseline_entries: usize,
    /// Multicast graphs currently cached.
    pub multicast_entries: usize,
    /// Links currently past the unusable-loss threshold.
    pub unusable_edges: usize,
}

impl GraphCacheStats {
    /// Fraction of lookups served from cache across all three tiers —
    /// at many-flow scale this is the *interned share*: how much graph
    /// construction was amortised away.
    pub fn interned_share(&self) -> f64 {
        let hits = self.baseline.hits + self.live.hits + self.multicast.hits;
        let total = hits + self.baseline.misses + self.live.misses + self.multicast.misses;
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }
}

struct Inner {
    baseline: PrecomputeCache<(Flow, Micros), TargetedGraphs>,
    live: PrecomputeCache<(Flow, CachedGraphKind, Micros), DisseminationGraph>,
    multicast: PrecomputeCache<(NodeId, u64, MulticastKind, Micros), MulticastGraph>,
    unusable: EdgeSet,
}

/// Shared, thread-safe cache of precomputed dissemination graphs for
/// one topology (see the module docs for the two tiers).
pub struct GraphCache {
    graph: Arc<Graph>,
    params: SchemeParams,
    unusable_loss: f64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for GraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("GraphCache")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("stats", &stats)
            .finish()
    }
}

impl GraphCache {
    /// Loss rate at which a link stops being considered for live
    /// graphs: the same "a problem link is avoided, not weighted"
    /// stance the paper's dynamic schemes take, at a threshold high
    /// enough that ordinary congestion noise never flips it.
    pub const DEFAULT_UNUSABLE_LOSS: f64 = 0.5;

    /// Creates a cache for `graph` with the given scheme tunables.
    pub fn new(graph: impl Into<Arc<Graph>>, params: SchemeParams) -> Self {
        GraphCache {
            graph: graph.into(),
            params,
            unusable_loss: Self::DEFAULT_UNUSABLE_LOSS,
            inner: Mutex::new(Inner {
                baseline: PrecomputeCache::new(),
                live: PrecomputeCache::new(),
                multicast: PrecomputeCache::new(),
                unusable: EdgeSet::new(),
            }),
        }
    }

    /// Overrides the unusable-loss threshold (see
    /// [`GraphCache::DEFAULT_UNUSABLE_LOSS`]).
    pub fn with_unusable_loss(mut self, threshold: f64) -> Self {
        self.unusable_loss = threshold;
        self
    }

    /// The topology this cache serves.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The scheme tunables bundles are computed with.
    pub fn params(&self) -> &SchemeParams {
        &self.params
    }

    /// The loss rate past which a link is excluded from live graphs.
    pub fn unusable_loss(&self) -> f64 {
        self.unusable_loss
    }

    /// The current topology epoch (see
    /// [`dg_topology::cache::PrecomputeCache::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("cache lock").live.epoch()
    }

    /// Advances the topology epoch, flushing every tier (call when the
    /// graph itself — membership or links — changes).
    pub fn advance_epoch(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.baseline.advance_epoch();
        inner.live.advance_epoch();
        inner.multicast.advance_epoch();
    }

    /// The interned baseline bundle for `flow` under `requirement`,
    /// computing it on first use. Identical to what
    /// [`TargetedRedundancy::new`] would compute.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TargetedGraphs::compute`].
    pub fn baseline(
        &self,
        flow: Flow,
        requirement: ServiceRequirement,
    ) -> Result<Arc<TargetedGraphs>, CoreError> {
        let mut inner = self.inner.lock().expect("cache lock");
        let key = (flow, requirement.deadline);
        if let Some(bundle) = inner.baseline.get(&key) {
            return Ok(bundle);
        }
        let bundle = TargetedGraphs::compute(&self.graph, flow, requirement, &self.params)?;
        Ok(inner.baseline.insert(key, bundle, EdgeSet::new()))
    }

    /// Records a reported loss rate for `edge`, invalidating exactly
    /// the live and multicast entries that depend on it when (and only
    /// when) the report flips the edge across the unusable threshold.
    /// Returns whether a flip (and therefore any invalidation)
    /// happened.
    pub fn note_loss(&self, edge: EdgeId, loss_rate: f64) -> bool {
        let unusable = loss_rate >= self.unusable_loss;
        let mut inner = self.inner.lock().expect("cache lock");
        let flipped =
            if unusable { inner.unusable.insert(edge) } else { inner.unusable.remove(edge) };
        if flipped {
            inner.live.invalidate_edge(edge);
            inner.multicast.invalidate_edge(edge);
        }
        flipped
    }

    /// Whether `edge` is currently below the unusable threshold.
    pub fn is_usable(&self, edge: EdgeId) -> bool {
        !self.inner.lock().expect("cache lock").unusable.contains(edge)
    }

    /// The cached live graph of `kind` for `flow`, computing it over
    /// the currently-usable subgraph on a miss.
    ///
    /// # Errors
    ///
    /// Fails only when the *full* topology cannot provide the graph
    /// (no disjoint pair, infeasible deadline): when merely the usable
    /// subgraph is insufficient, the computation falls back to the
    /// full graph, mirroring a scheme that has no good route left and
    /// keeps its last one.
    pub fn live(
        &self,
        flow: Flow,
        kind: CachedGraphKind,
        requirement: ServiceRequirement,
    ) -> Result<Arc<DisseminationGraph>, CoreError> {
        let mut inner = self.inner.lock().expect("cache lock");
        let key = (flow, kind, requirement.deadline);
        if let Some(graph) = inner.live.get(&key) {
            return Ok(graph);
        }
        let (graph, deps) = self.compute_live(flow, kind, requirement, &inner.unusable)?;
        Ok(inner.live.insert(key, graph, deps))
    }

    /// From-scratch computation of the live graph of `kind` under the
    /// current usability partition, bypassing the cache — the oracle
    /// the correctness proptests compare [`GraphCache::live`] against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphCache::live`].
    pub fn compute_uncached(
        &self,
        flow: Flow,
        kind: CachedGraphKind,
        requirement: ServiceRequirement,
    ) -> Result<DisseminationGraph, CoreError> {
        let unusable = self.inner.lock().expect("cache lock").unusable.clone();
        self.compute_live(flow, kind, requirement, &unusable).map(|(g, _)| g)
    }

    /// The interned multicast graph for `source` → `receivers` under
    /// `kind` and `requirement`, computing it over the currently-usable
    /// subgraph on a miss.
    ///
    /// This is the **cross-flow interning** tier: the key is
    /// `(source, receiver-set digest, kind, deadline)`, so any number
    /// of flows sharing a source and receiver set — 10k subscribers of
    /// one feed — share one precomputed graph behind one `Arc`.
    /// Receiver order and duplicates do not matter (the set is
    /// canonicalized first), and every hit re-checks the stored
    /// receiver set so a digest collision can never serve a wrong
    /// graph. Entries are dependency-tracked and invalidated by
    /// [`GraphCache::note_loss`] exactly like the unicast live tier.
    ///
    /// # Errors
    ///
    /// [`CoreError::MismatchedEndpoints`] when `receivers` is empty
    /// after dropping the source from it; otherwise fails only when
    /// the *full* topology cannot reach some receiver (the computation
    /// falls back to the full graph when merely the usable subgraph is
    /// insufficient, mirroring the live tier).
    pub fn multicast(
        &self,
        source: NodeId,
        receivers: &[NodeId],
        kind: MulticastKind,
        requirement: ServiceRequirement,
    ) -> Result<Arc<MulticastGraph>, CoreError> {
        let canonical = canonical_receivers(source, receivers)?;
        let key = (source, receiver_digest(&canonical), kind, requirement.deadline);
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(graph) = inner.multicast.get(&key) {
            if graph.receivers() == canonical.as_slice() {
                return Ok(graph);
            }
            // Digest collision: serve a fresh computation without
            // evicting the resident entry.
            let (g, _) =
                self.compute_multicast(source, &canonical, kind, requirement, &inner.unusable)?;
            return Ok(Arc::new(g));
        }
        let (graph, deps) =
            self.compute_multicast(source, &canonical, kind, requirement, &inner.unusable)?;
        Ok(inner.multicast.insert(key, graph, deps))
    }

    /// From-scratch computation of the multicast graph under the
    /// current usability partition, bypassing the cache — the oracle
    /// the multicast proptests compare [`GraphCache::multicast`]
    /// against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphCache::multicast`].
    pub fn compute_multicast_uncached(
        &self,
        source: NodeId,
        receivers: &[NodeId],
        kind: MulticastKind,
        requirement: ServiceRequirement,
    ) -> Result<MulticastGraph, CoreError> {
        let canonical = canonical_receivers(source, receivers)?;
        let unusable = self.inner.lock().expect("cache lock").unusable.clone();
        self.compute_multicast(source, &canonical, kind, requirement, &unusable).map(|(g, _)| g)
    }

    /// Counter snapshot across all tiers.
    pub fn stats(&self) -> GraphCacheStats {
        let inner = self.inner.lock().expect("cache lock");
        GraphCacheStats {
            baseline: inner.baseline.stats(),
            live: inner.live.stats(),
            multicast: inner.multicast.stats(),
            live_entries: inner.live.len(),
            baseline_entries: inner.baseline.len(),
            multicast_entries: inner.multicast.len(),
            unusable_edges: inner.unusable.len(),
        }
    }

    /// Computes the live graph and its dependency set against an
    /// explicit usability partition (see the module docs for why the
    /// dependency set is `selected edges ∪ unusable edges`).
    fn compute_live(
        &self,
        flow: Flow,
        kind: CachedGraphKind,
        requirement: ServiceRequirement,
        unusable: &EdgeSet,
    ) -> Result<(DisseminationGraph, EdgeSet), CoreError> {
        let g = &*self.graph;
        // Healing any currently-unusable edge must recompute: the edge
        // was excluded, so its return can only improve the optimum.
        let mut deps = unusable.clone();
        let usable = |e: EdgeId| !unusable.contains(e);
        let pair = k_disjoint_paths_weighted(
            g,
            flow.source,
            flow.destination,
            2,
            self.params.disjointness,
            |e| usable(e).then(|| tie_broken_weight(g, e) as i64),
        );
        let paths = match pair {
            Ok(p) => p,
            // Not enough usable disjoint routes: fall back to the full
            // topology rather than failing the flow.
            Err(_) => k_disjoint_paths_weighted(
                g,
                flow.source,
                flow.destination,
                2,
                self.params.disjointness,
                |e| Some(tie_broken_weight(g, e) as i64),
            )?,
        };
        for p in &paths {
            for &e in p.edges() {
                deps.insert(e);
            }
        }
        let normal = DisseminationGraph::from_paths(g, &paths)?;
        let graph = match kind {
            CachedGraphKind::TwoDisjoint => normal,
            CachedGraphKind::SourceProblem => {
                self.problem_graph(flow, &normal, requirement, unusable, Side::Source, &mut deps)?
            }
            CachedGraphKind::DestinationProblem => self.problem_graph(
                flow,
                &normal,
                requirement,
                unusable,
                Side::Destination,
                &mut deps,
            )?,
            CachedGraphKind::Robust => {
                let s = self.problem_graph(
                    flow,
                    &normal,
                    requirement,
                    unusable,
                    Side::Source,
                    &mut deps,
                )?;
                let d = self.problem_graph(
                    flow,
                    &normal,
                    requirement,
                    unusable,
                    Side::Destination,
                    &mut deps,
                )?;
                s.union(g, &d)?
            }
        };
        Ok((graph, deps))
    }

    /// Usability-filtered analogue of the targeted scheme's problem
    /// graphs: the disjoint pair plus a deadline-feasible branch
    /// through every usable endpoint neighbour, continuations chosen
    /// canonically (tie-broken weights). Selected edges are added to
    /// `deps`.
    fn problem_graph(
        &self,
        flow: Flow,
        normal: &DisseminationGraph,
        requirement: ServiceRequirement,
        unusable: &EdgeSet,
        side: Side,
        deps: &mut EdgeSet,
    ) -> Result<DisseminationGraph, CoreError> {
        let g = &*self.graph;
        let feasible: HashSet<EdgeId> =
            reach::time_constrained_edges(g, flow.source, flow.destination, requirement.deadline)?
                .into_iter()
                .collect();
        if feasible.is_empty() {
            return Err(CoreError::DeadlineInfeasible {
                source: flow.source,
                destination: flow.destination,
            });
        }
        let ok = |e: EdgeId| feasible.contains(&e) && !unusable.contains(e);
        let mut candidates: Vec<(Micros, Vec<EdgeId>)> = Vec::new();
        match side {
            Side::Source => {
                let used: HashSet<NodeId> =
                    normal.forwarding_edges(g, flow.source).map(|e| g.edge(e).dst).collect();
                for &out in g.out_edges(flow.source) {
                    let neighbor = g.edge(out).dst;
                    if !ok(out) || used.contains(&neighbor) {
                        continue;
                    }
                    if neighbor == flow.destination {
                        candidates.push((g.edge(out).latency, vec![out]));
                        continue;
                    }
                    let tail =
                        dijkstra::shortest_path_weighted(g, neighbor, flow.destination, |e| {
                            let info = g.edge(e);
                            (ok(e) && info.src != flow.source && info.dst != flow.source)
                                .then(|| tie_broken_weight(g, e))
                        });
                    if let Ok(tail) = tail {
                        let branch_latency = g.edge(out).latency + tail.latency(g);
                        if branch_latency <= requirement.deadline {
                            let mut branch = vec![out];
                            branch.extend_from_slice(tail.edges());
                            candidates.push((branch_latency, branch));
                        }
                    }
                }
            }
            Side::Destination => {
                let used: HashSet<NodeId> = normal
                    .edges()
                    .iter()
                    .filter(|&&e| g.edge(e).dst == flow.destination)
                    .map(|&e| g.edge(e).src)
                    .collect();
                for &inc in g.in_edges(flow.destination) {
                    let neighbor = g.edge(inc).src;
                    if !ok(inc) || used.contains(&neighbor) {
                        continue;
                    }
                    if neighbor == flow.source {
                        candidates.push((g.edge(inc).latency, vec![inc]));
                        continue;
                    }
                    let head = dijkstra::shortest_path_weighted(g, flow.source, neighbor, |e| {
                        let info = g.edge(e);
                        (ok(e) && info.src != flow.destination && info.dst != flow.destination)
                            .then(|| tie_broken_weight(g, e))
                    });
                    if let Ok(head) = head {
                        let branch_latency = g.edge(inc).latency + head.latency(g);
                        if branch_latency <= requirement.deadline {
                            let mut branch = head.edges().to_vec();
                            branch.push(inc);
                            candidates.push((branch_latency, branch));
                        }
                    }
                }
            }
        }
        candidates.sort_by(|a, b| (a.0, a.1.as_slice()).cmp(&(b.0, b.1.as_slice())));
        let limit = self.params.problem_branch_limit.map_or(usize::MAX, usize::from);
        let mut edges: Vec<EdgeId> = normal.edges().to_vec();
        for (_, branch) in candidates.into_iter().take(limit) {
            for &e in &branch {
                deps.insert(e);
            }
            edges.extend(branch);
        }
        DisseminationGraph::new(g, flow.source, flow.destination, edges)
    }

    /// Computes the multicast graph and its dependency set against an
    /// explicit usability partition. The soundness argument is the
    /// live tier's, extended to sets: the computation reads only the
    /// usable/unusable partition, every search runs on tie-broken
    /// weights (unique optima), and the dependency set is `selected
    /// edges ∪ unusable edges` — plus, for [`MulticastKind::Targeted`],
    /// every receiver's in-edges, because the problem *classification*
    /// of a receiver reads their usability too.
    fn compute_multicast(
        &self,
        source: NodeId,
        receivers: &[NodeId],
        kind: MulticastKind,
        requirement: ServiceRequirement,
        unusable: &EdgeSet,
    ) -> Result<(MulticastGraph, EdgeSet), CoreError> {
        let g = &*self.graph;
        let mut deps = unusable.clone();
        let usable = |e: EdgeId| !unusable.contains(e);

        // The shared tree: per-receiver tie-broken shortest usable
        // paths. Unique optima make their union a proper out-tree, and
        // the full-graph fallback mirrors the live tier's "keep a
        // route rather than fail the flow" stance.
        let mut edges: Vec<EdgeId> = Vec::new();
        for &r in receivers {
            let path = dijkstra::shortest_path_weighted(g, source, r, |e| {
                usable(e).then(|| tie_broken_weight(g, e))
            })
            .or_else(|_| {
                dijkstra::shortest_path_weighted(g, source, r, |e| Some(tie_broken_weight(g, e)))
            })?;
            edges.extend_from_slice(path.edges());
        }
        for &e in &edges {
            deps.insert(e);
        }

        if kind != MulticastKind::Tree {
            // Branch decisions below read the tree as it stood, not
            // earlier receivers' grafts, so construction order cannot
            // leak into the result.
            let tree = edges.clone();
            for &r in receivers {
                if kind == MulticastKind::Targeted {
                    // The classification itself reads every in-edge's
                    // usability: a flip on any of them must recompute.
                    for &e in g.in_edges(r) {
                        deps.insert(e);
                    }
                    let problem = g.in_edges(r).iter().any(|&e| unusable.contains(e));
                    if !problem {
                        continue;
                    }
                }
                self.graft_receiver_branches(
                    source,
                    r,
                    requirement,
                    unusable,
                    &tree,
                    &mut edges,
                    &mut deps,
                );
            }
        }
        let graph = MulticastGraph::new(g, source, receivers.to_vec(), edges)?;
        Ok((graph, deps))
    }

    /// Grafts destination-problem-style redundancy branches for one
    /// receiver: a deadline-feasible path into every usable in-edge of
    /// `receiver` not already fed by the tree, continuations chosen
    /// canonically (tie-broken weights), best-latency branches first up
    /// to `problem_branch_limit`. A receiver whose deadline admits no
    /// feasible edges keeps its plain tree path instead of failing the
    /// whole group.
    #[allow(clippy::too_many_arguments)]
    fn graft_receiver_branches(
        &self,
        source: NodeId,
        receiver: NodeId,
        requirement: ServiceRequirement,
        unusable: &EdgeSet,
        tree: &[EdgeId],
        edges: &mut Vec<EdgeId>,
        deps: &mut EdgeSet,
    ) {
        let g = &*self.graph;
        let feasible: HashSet<EdgeId> =
            match reach::time_constrained_edges(g, source, receiver, requirement.deadline) {
                Ok(v) if !v.is_empty() => v.into_iter().collect(),
                _ => return,
            };
        let ok = |e: EdgeId| feasible.contains(&e) && !unusable.contains(e);
        let used: HashSet<NodeId> =
            tree.iter().filter(|&&e| g.edge(e).dst == receiver).map(|&e| g.edge(e).src).collect();
        let mut candidates: Vec<(Micros, Vec<EdgeId>)> = Vec::new();
        for &inc in g.in_edges(receiver) {
            let neighbor = g.edge(inc).src;
            if !ok(inc) || used.contains(&neighbor) {
                continue;
            }
            if neighbor == source {
                candidates.push((g.edge(inc).latency, vec![inc]));
                continue;
            }
            let head = dijkstra::shortest_path_weighted(g, source, neighbor, |e| {
                let info = g.edge(e);
                (ok(e) && info.src != receiver && info.dst != receiver)
                    .then(|| tie_broken_weight(g, e))
            });
            if let Ok(head) = head {
                let branch_latency = g.edge(inc).latency + head.latency(g);
                if branch_latency <= requirement.deadline {
                    let mut branch = head.edges().to_vec();
                    branch.push(inc);
                    candidates.push((branch_latency, branch));
                }
            }
        }
        candidates.sort_by(|a, b| (a.0, a.1.as_slice()).cmp(&(b.0, b.1.as_slice())));
        let limit = self.params.problem_branch_limit.map_or(usize::MAX, usize::from);
        for (_, branch) in candidates.into_iter().take(limit) {
            for &e in &branch {
                deps.insert(e);
            }
            edges.extend(branch);
        }
    }
}

/// Canonicalizes a receiver set for interning: sorted, deduplicated,
/// source dropped; errors when nothing remains.
fn canonical_receivers(source: NodeId, receivers: &[NodeId]) -> Result<Vec<NodeId>, CoreError> {
    let mut canonical: Vec<NodeId> = receivers.iter().copied().filter(|&r| r != source).collect();
    canonical.sort();
    canonical.dedup();
    if canonical.is_empty() {
        return Err(CoreError::MismatchedEndpoints);
    }
    Ok(canonical)
}

#[derive(Clone, Copy)]
enum Side {
    Source,
    Destination,
}

/// Latency with an edge-unique tie-break:
/// `min(latency, ~2.1 s) × 2⁴² + hash₃₂(edge)`. Latency dominates (a
/// 1 µs difference outweighs any hash sum over paths up to 1024 hops),
/// and latency ties resolve by hash sums that virtually never collide
/// — so every internal search has a unique optimum and cached results
/// are reproducible functions of the usable-edge partition.
fn tie_broken_weight(graph: &Graph, e: EdgeId) -> u64 {
    let lat = graph.edge(e).latency.as_micros().min((1 << 21) - 1);
    (lat << 42) + (splitmix64(e.index() as u64 + 1) >> 32)
}

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit hash.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Like [`build_scheme`], but serving the shareable precomputations
/// (targeted-redundancy bundles, disjoint pairs) from `cache` instead
/// of recomputing them per scheme instance. Scheme behaviour is
/// identical; only the construction cost changes.
///
/// # Errors
///
/// Same conditions as [`build_scheme`].
pub fn build_scheme_cached(
    kind: SchemeKind,
    cache: &GraphCache,
    flow: Flow,
    requirement: ServiceRequirement,
) -> Result<Box<dyn RoutingScheme>, CoreError> {
    match kind {
        SchemeKind::TargetedRedundancy => {
            let graphs = cache.baseline(flow, requirement)?;
            Ok(Box::new(TargetedRedundancy::from_graphs(graphs, flow, cache.params())))
        }
        SchemeKind::StaticTwoDisjoint => match cache.baseline(flow, requirement) {
            Ok(graphs) => Ok(Box::new(StaticTwoDisjoint::from_graph(flow, graphs.normal.clone()))),
            // The bundle needs a feasible deadline; the plain pair
            // does not. Fall back rather than fail the flow.
            Err(_) => build_scheme(kind, cache.graph(), flow, requirement, cache.params()),
        },
        other => build_scheme(other, cache.graph(), flow, requirement, cache.params()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    fn setup() -> (Graph, Flow) {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        (g, flow)
    }

    #[test]
    fn baseline_interns_and_matches_direct_construction() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let params = SchemeParams::default();
        let cache = GraphCache::new(g.clone(), params);
        let a = cache.baseline(flow, req).unwrap();
        let b = cache.baseline(flow, req).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must return the interned bundle");
        assert_eq!(cache.stats().baseline.hits, 1);
        assert_eq!(cache.stats().baseline.misses, 1);

        let direct = TargetedRedundancy::new(&g, flow, req, &params).unwrap();
        for mode in [
            TargetedMode::Normal,
            TargetedMode::SourceProblem,
            TargetedMode::DestinationProblem,
            TargetedMode::Robust,
        ] {
            assert_eq!(a.for_mode(mode), direct.graph_for_mode(mode), "{mode:?} differs");
        }
    }

    use crate::scheme::TargetedMode;

    #[test]
    fn cached_schemes_behave_like_direct_ones() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let params = SchemeParams::default();
        let cache = GraphCache::new(g.clone(), params);
        for kind in SchemeKind::ALL {
            let cached = build_scheme_cached(kind, &cache, flow, req).unwrap();
            let direct = build_scheme(kind, &g, flow, req, &params).unwrap();
            assert_eq!(cached.kind(), direct.kind());
            assert_eq!(cached.current(), direct.current(), "{kind} differs when cached");
        }
    }

    #[test]
    fn live_graphs_avoid_unusable_links_and_rehit() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let normal = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        let again = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        assert!(Arc::ptr_eq(&normal, &again));
        assert_eq!(cache.stats().live.hits, 1);

        // Kill one edge of the pair: the entry must be invalidated and
        // the recomputed graph must avoid the dead link.
        let dead = normal.edges()[0];
        assert!(cache.note_loss(dead, 0.9));
        assert_eq!(cache.stats().live.invalidated, 1);
        let rerouted = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        assert!(!rerouted.contains(dead), "live graph still uses the unusable link");
        assert_eq!(
            *rerouted,
            cache.compute_uncached(flow, CachedGraphKind::TwoDisjoint, req).unwrap()
        );

        // Healing it flips back and invalidates again (the edge is in
        // the entry's unusable-dependency set).
        assert!(cache.note_loss(dead, 0.0));
        let healed = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        assert_eq!(*healed, *normal);
    }

    #[test]
    fn unrelated_flap_does_not_invalidate() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let robust = cache.live(flow, CachedGraphKind::Robust, req).unwrap();
        // A link far from the flow (MIA's first out-edge) that the
        // robust graph does not select.
        let mia = g.node_by_name("MIA").unwrap();
        let far = g.out_edges(mia).iter().copied().find(|e| !robust.contains(*e)).unwrap();
        assert!(cache.note_loss(far, 0.9), "crossing the threshold is a flip");
        assert_eq!(cache.stats().live.invalidated, 0, "unrelated flap must not evict");
        let again = cache.live(flow, CachedGraphKind::Robust, req).unwrap();
        assert!(Arc::ptr_eq(&robust, &again));
        // And the cached value still equals the oracle under the new
        // partition.
        assert_eq!(*again, cache.compute_uncached(flow, CachedGraphKind::Robust, req).unwrap());
    }

    #[test]
    fn sub_threshold_loss_never_flips() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let normal = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        for e in g.edges() {
            assert!(!cache.note_loss(e, 0.3), "0.3 loss is below the default threshold");
        }
        let again = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        assert!(Arc::ptr_eq(&normal, &again));
    }

    #[test]
    fn epoch_advance_flushes_both_tiers() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g, SchemeParams::default());
        cache.baseline(flow, req).unwrap();
        cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        assert_eq!(cache.stats().baseline_entries, 1);
        assert_eq!(cache.stats().live_entries, 1);
        cache.advance_epoch();
        assert_eq!(cache.epoch(), 1);
        assert_eq!(cache.stats().baseline_entries, 0);
        assert_eq!(cache.stats().live_entries, 0);
    }

    #[test]
    fn live_two_disjoint_matches_scheme_latency_optimum() {
        // The tie-broken pair must still be latency-optimal: same
        // total latency as the untied disjoint_pair computation.
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let live = cache.live(flow, CachedGraphKind::TwoDisjoint, req).unwrap();
        let direct =
            StaticTwoDisjoint::new(&g, flow, SchemeParams::default().disjointness).unwrap();
        let lat = |dg: &DisseminationGraph| -> u64 {
            dg.edges().iter().map(|&e| g.edge(e).latency.as_micros()).sum()
        };
        assert_eq!(lat(&live), lat(direct.current()));
    }

    #[test]
    fn multicast_interns_across_receiver_orderings() {
        let (g, _) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let src = g.node_by_name("NYC").unwrap();
        let rs: Vec<NodeId> =
            ["SJC", "LAX", "MIA"].iter().map(|n| g.node_by_name(n).unwrap()).collect();
        let a = cache.multicast(src, &rs, MulticastKind::Targeted, req).unwrap();
        let shuffled = vec![rs[2], rs[0], rs[1], rs[0], src];
        let b = cache.multicast(src, &shuffled, MulticastKind::Targeted, req).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "order/dup/source differences must hit the same entry");
        assert_eq!(cache.stats().multicast.hits, 1);
        assert_eq!(cache.stats().multicast.misses, 1);
        assert_eq!(cache.stats().multicast_entries, 1);
        for &r in &rs {
            assert!(a.contains_receiver(r));
        }
    }

    #[test]
    fn multicast_invalidates_on_selected_flap_and_matches_oracle() {
        let (g, _) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let src = g.node_by_name("NYC").unwrap();
        let rs: Vec<NodeId> = ["SJC", "DEN"].iter().map(|n| g.node_by_name(n).unwrap()).collect();
        let tree = cache.multicast(src, &rs, MulticastKind::Tree, req).unwrap();
        let dead = tree.edges()[0];
        assert!(cache.note_loss(dead, 0.9));
        assert_eq!(cache.stats().multicast.invalidated, 1);
        let rerouted = cache.multicast(src, &rs, MulticastKind::Tree, req).unwrap();
        assert!(!rerouted.contains(dead), "tree still uses the unusable link");
        assert_eq!(
            *rerouted,
            cache.compute_multicast_uncached(src, &rs, MulticastKind::Tree, req).unwrap()
        );
        // Healing flips back (the edge is in the unusable snapshot).
        assert!(cache.note_loss(dead, 0.0));
        let healed = cache.multicast(src, &rs, MulticastKind::Tree, req).unwrap();
        assert_eq!(*healed, *tree);
    }

    #[test]
    fn targeted_multicast_grafts_branches_only_on_problem_receivers() {
        let (g, _) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let src = g.node_by_name("NYC").unwrap();
        let rs: Vec<NodeId> = ["SJC", "ATL"].iter().map(|n| g.node_by_name(n).unwrap()).collect();
        let healthy = cache.multicast(src, &rs, MulticastKind::Targeted, req).unwrap();
        let plain = cache.multicast(src, &rs, MulticastKind::Tree, req).unwrap();
        assert_eq!(healthy.edges(), plain.edges(), "no problems -> targeted is the plain tree");

        // Impair one of SJC's in-edges: SJC becomes a problem receiver
        // and gains redundancy branches; the robust variant has them
        // regardless.
        let sjc = rs[0];
        let dead = *g.in_edges(sjc).first().unwrap();
        cache.note_loss(dead, 0.9);
        let targeted = cache.multicast(src, &rs, MulticastKind::Targeted, req).unwrap();
        assert!(!targeted.contains(dead));
        let inbound =
            |mg: &MulticastGraph| mg.edges().iter().filter(|&&e| g.edge(e).dst == sjc).count();
        assert!(
            inbound(&targeted) > 1,
            "problem receiver must gain redundant inbound edges, got {}",
            inbound(&targeted)
        );
        let robust = cache.multicast(src, &rs, MulticastKind::Robust, req).unwrap();
        assert!(inbound(&robust) > 1);
    }

    #[test]
    fn epoch_advance_flushes_multicast_tier() {
        let (g, _) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let src = g.node_by_name("NYC").unwrap();
        let rs = [g.node_by_name("SJC").unwrap()];
        cache.multicast(src, &rs, MulticastKind::Tree, req).unwrap();
        assert_eq!(cache.stats().multicast_entries, 1);
        cache.advance_epoch();
        assert_eq!(cache.stats().multicast_entries, 0);
    }

    #[test]
    fn single_receiver_tree_matches_unicast_single_path() {
        // A one-receiver tree is exactly the tie-broken shortest path
        // the live unicast tier computes for DynamicSinglePath-style
        // lookups, so `--flows 1` group runs reduce to unicast.
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let mg =
            cache.multicast(flow.source, &[flow.destination], MulticastKind::Tree, req).unwrap();
        let uni = mg.unicast_view(&g, flow.destination).unwrap();
        assert_eq!(uni.edges(), mg.edges());
        assert_eq!(mg.receivers(), &[flow.destination]);
    }

    #[test]
    fn interned_share_reflects_all_tiers() {
        let (g, flow) = setup();
        let req = ServiceRequirement::default();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        assert_eq!(cache.stats().interned_share(), 0.0);
        cache.multicast(flow.source, &[flow.destination], MulticastKind::Tree, req).unwrap();
        cache.multicast(flow.source, &[flow.destination], MulticastKind::Tree, req).unwrap();
        cache.multicast(flow.source, &[flow.destination], MulticastKind::Tree, req).unwrap();
        let share = cache.stats().interned_share();
        assert!((share - 2.0 / 3.0).abs() < 1e-9, "2 hits of 3 lookups, got {share}");
    }
}
