//! Dissemination graphs with targeted redundancy — the paper's routing
//! method.
//!
//! The scheme precomputes four dissemination graphs per flow:
//!
//! 1. the **normal graph**: two node-disjoint paths,
//! 2. the **source-problem graph**: the disjoint pair plus a branch
//!    through *every* usable neighbour of the source (so a copy escapes
//!    the lossy source area on as many independent links as possible),
//! 3. the **destination-problem graph**: symmetric, entering the
//!    destination over every usable neighbour,
//! 4. the **robust graph**: the union of 2 and 3.
//!
//! At runtime a [`ProblemDetector`] classifies each monitoring update;
//! the selector switches *up* (toward more redundancy) immediately and
//! *down* only after the problem has stayed clear for a configurable
//! number of updates, damping flapping. Because problems around
//! endpoints are rare, the expensive graphs are almost never active and
//! the scheme's average cost stays within a few percent of two disjoint
//! paths while recovering nearly the whole gap to optimal flooding.

use crate::scheme::{RoutingScheme, SchemeKind, SchemeParams};
use crate::{
    CoreError, DisseminationGraph, Flow, ProblemDetector, ProblemStatus, ServiceRequirement,
};
use dg_topology::algo::{dijkstra, disjoint::disjoint_pair, reach};
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use dg_trace::NetworkState;
use std::collections::HashSet;
use std::sync::Arc;

/// Which of the four precomputed graphs is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetedMode {
    /// Two disjoint paths (the common case).
    Normal,
    /// Source-problem graph active.
    SourceProblem,
    /// Destination-problem graph active.
    DestinationProblem,
    /// Robust source-destination graph active.
    Robust,
}

impl TargetedMode {
    fn severity(self) -> u8 {
        match self {
            TargetedMode::Normal => 0,
            TargetedMode::SourceProblem | TargetedMode::DestinationProblem => 1,
            TargetedMode::Robust => 2,
        }
    }

    fn for_status(status: ProblemStatus) -> TargetedMode {
        match status {
            ProblemStatus::Clear => TargetedMode::Normal,
            ProblemStatus::SourceProblem => TargetedMode::SourceProblem,
            ProblemStatus::DestinationProblem => TargetedMode::DestinationProblem,
            ProblemStatus::BothProblems => TargetedMode::Robust,
        }
    }
}

/// The four precomputed dissemination graphs of one targeted-
/// redundancy flow, as a shareable bundle.
///
/// [`TargetedRedundancy`] holds one of these behind an [`Arc`]; the
/// `GraphCache` interning layer (`dg-core::cache`) computes a bundle
/// once per `(flow, deadline)` and hands the same allocation to every
/// scheme instance that needs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetedGraphs {
    /// Two disjoint paths (the common case).
    pub normal: DisseminationGraph,
    /// The source-problem graph: the pair plus an escape branch
    /// through every usable source neighbour.
    pub source_problem: DisseminationGraph,
    /// The destination-problem graph, symmetric on the receiving side.
    pub destination_problem: DisseminationGraph,
    /// The union of the two problem graphs.
    pub robust: DisseminationGraph,
}

impl TargetedGraphs {
    /// Precomputes the four graphs for `flow` under `requirement`.
    ///
    /// # Errors
    ///
    /// Returns an error when the topology lacks two disjoint routes or
    /// the deadline is infeasible.
    pub fn compute(
        topology: &Graph,
        flow: Flow,
        requirement: ServiceRequirement,
        params: &SchemeParams,
    ) -> Result<Self, CoreError> {
        let (p1, p2) = disjoint_pair(topology, flow.source, flow.destination, params.disjointness)?;
        let normal = DisseminationGraph::from_paths(topology, &[p1, p2])?;

        // Edges that can still meet the deadline; branches outside this
        // set could never deliver on time, so they are never added.
        let feasible: HashSet<EdgeId> = reach::time_constrained_edges(
            topology,
            flow.source,
            flow.destination,
            requirement.deadline,
        )?
        .into_iter()
        .collect();
        if feasible.is_empty() {
            return Err(CoreError::DeadlineInfeasible {
                source: flow.source,
                destination: flow.destination,
            });
        }

        let limit = params.problem_branch_limit.map(usize::from);
        let source_problem = build_source_problem_graph(
            topology,
            flow,
            &normal,
            &feasible,
            requirement.deadline,
            limit,
        )?;
        let destination_problem = build_destination_problem_graph(
            topology,
            flow,
            &normal,
            &feasible,
            requirement.deadline,
            limit,
        )?;
        let robust = source_problem.union(topology, &destination_problem)?;

        Ok(TargetedGraphs { normal, source_problem, destination_problem, robust })
    }

    /// The graph for `mode`.
    pub fn for_mode(&self, mode: TargetedMode) -> &DisseminationGraph {
        match mode {
            TargetedMode::Normal => &self.normal,
            TargetedMode::SourceProblem => &self.source_problem,
            TargetedMode::DestinationProblem => &self.destination_problem,
            TargetedMode::Robust => &self.robust,
        }
    }
}

/// The targeted-redundancy routing scheme (see module docs).
#[derive(Debug, Clone)]
pub struct TargetedRedundancy {
    flow: Flow,
    detector: ProblemDetector,
    clear_after_updates: u32,
    graphs: Arc<TargetedGraphs>,
    mode: TargetedMode,
    clear_streak: u32,
}

impl TargetedRedundancy {
    /// Precomputes the four graphs for `flow` under `requirement`.
    ///
    /// # Errors
    ///
    /// Returns an error when the topology lacks two disjoint routes or
    /// the deadline is infeasible.
    pub fn new(
        topology: &Graph,
        flow: Flow,
        requirement: ServiceRequirement,
        params: &SchemeParams,
    ) -> Result<Self, CoreError> {
        let graphs = TargetedGraphs::compute(topology, flow, requirement, params)?;
        Ok(Self::from_graphs(Arc::new(graphs), flow, params))
    }

    /// Builds the scheme around an already-computed (typically cached
    /// and shared) graph bundle.
    pub fn from_graphs(graphs: Arc<TargetedGraphs>, flow: Flow, params: &SchemeParams) -> Self {
        TargetedRedundancy {
            flow,
            detector: ProblemDetector::new(params.problem_loss_threshold),
            clear_after_updates: params.clear_after_updates,
            graphs,
            mode: TargetedMode::Normal,
            clear_streak: 0,
        }
    }

    /// The currently active mode.
    pub fn mode(&self) -> TargetedMode {
        self.mode
    }

    /// The precomputed graph for `mode`.
    pub fn graph_for_mode(&self, mode: TargetedMode) -> &DisseminationGraph {
        self.graphs.for_mode(mode)
    }
}

/// Adds, for every usable neighbour `n` of the source not already on
/// the disjoint pair, the edge `source -> n` plus a shortest
/// continuation `n -> destination` that avoids the source area, so each
/// branch is an independent escape route. Branches that cannot meet the
/// deadline are skipped; `limit` caps how many are added (lowest
/// latency first).
fn build_source_problem_graph(
    topology: &Graph,
    flow: Flow,
    normal: &DisseminationGraph,
    feasible: &HashSet<EdgeId>,
    deadline: Micros,
    limit: Option<usize>,
) -> Result<DisseminationGraph, CoreError> {
    let used: HashSet<NodeId> =
        normal.forwarding_edges(topology, flow.source).map(|e| topology.edge(e).dst).collect();
    let mut candidates: Vec<(Micros, Vec<EdgeId>)> = Vec::new();
    for &out in topology.out_edges(flow.source) {
        if !feasible.contains(&out) || used.contains(&topology.edge(out).dst) {
            continue;
        }
        let neighbor = topology.edge(out).dst;
        if neighbor == flow.destination {
            candidates.push((topology.edge(out).latency, vec![out]));
            continue;
        }
        if let Some(tail) =
            continuation(topology, neighbor, flow.destination, flow.source, feasible)
        {
            let branch_latency: Micros = topology.edge(out).latency
                + tail.iter().map(|&e| topology.edge(e).latency).sum::<Micros>();
            if branch_latency <= deadline {
                let mut branch = vec![out];
                branch.extend(tail);
                candidates.push((branch_latency, branch));
            }
        }
    }
    candidates.sort_by(|a, b| (a.0, a.1.as_slice()).cmp(&(b.0, b.1.as_slice())));
    let mut edges: Vec<EdgeId> = normal.edges().to_vec();
    for (_, branch) in candidates.into_iter().take(limit.unwrap_or(usize::MAX)) {
        edges.extend(branch);
    }
    DisseminationGraph::new(topology, flow.source, flow.destination, edges)
}

/// Symmetric construction on the destination side: a shortest approach
/// `source -> m` avoiding the destination area, plus the final edge
/// `m -> destination`, for every usable in-neighbour `m` not already on
/// the disjoint pair; `limit` caps how many are added.
fn build_destination_problem_graph(
    topology: &Graph,
    flow: Flow,
    normal: &DisseminationGraph,
    feasible: &HashSet<EdgeId>,
    deadline: Micros,
    limit: Option<usize>,
) -> Result<DisseminationGraph, CoreError> {
    let used: HashSet<NodeId> = normal
        .edges()
        .iter()
        .filter(|&&e| topology.edge(e).dst == flow.destination)
        .map(|&e| topology.edge(e).src)
        .collect();
    let mut candidates: Vec<(Micros, Vec<EdgeId>)> = Vec::new();
    for &inc in topology.in_edges(flow.destination) {
        if !feasible.contains(&inc) || used.contains(&topology.edge(inc).src) {
            continue;
        }
        let neighbor = topology.edge(inc).src;
        if neighbor == flow.source {
            candidates.push((topology.edge(inc).latency, vec![inc]));
            continue;
        }
        if let Some(head) =
            continuation(topology, flow.source, neighbor, flow.destination, feasible)
        {
            let branch_latency: Micros = topology.edge(inc).latency
                + head.iter().map(|&e| topology.edge(e).latency).sum::<Micros>();
            if branch_latency <= deadline {
                let mut branch = head;
                branch.push(inc);
                candidates.push((branch_latency, branch));
            }
        }
    }
    candidates.sort_by(|a, b| (a.0, a.1.as_slice()).cmp(&(b.0, b.1.as_slice())));
    let mut edges: Vec<EdgeId> = normal.edges().to_vec();
    for (_, branch) in candidates.into_iter().take(limit.unwrap_or(usize::MAX)) {
        edges.extend(branch);
    }
    DisseminationGraph::new(topology, flow.source, flow.destination, edges)
}

/// Shortest path `from -> to` that stays within the feasible edge set
/// and avoids the node `avoid` (the problematic endpoint area).
fn continuation(
    topology: &Graph,
    from: NodeId,
    to: NodeId,
    avoid: NodeId,
    feasible: &HashSet<EdgeId>,
) -> Option<Vec<EdgeId>> {
    dijkstra::shortest_path_filtered(topology, from, to, |e| {
        let info = topology.edge(e);
        feasible.contains(&e) && info.src != avoid && info.dst != avoid
    })
    .ok()
    .map(|p| p.edges().to_vec())
}

impl RoutingScheme for TargetedRedundancy {
    fn kind(&self) -> SchemeKind {
        SchemeKind::TargetedRedundancy
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        self.graph_for_mode(self.mode)
    }

    fn update(&mut self, topology: &Graph, state: &NetworkState) -> bool {
        // Problems are always judged against the normal graph's edges:
        // those are the links the flow depends on in steady state, and
        // judging against the inflated problem graphs would keep the
        // scheme escalated whenever any extra branch sees loss.
        let status = self.detector.classify(topology, self.flow, &self.graphs.normal, state);
        let target = TargetedMode::for_status(status);
        let previous = self.mode;

        if target.severity() >= self.mode.severity() {
            // Escalate (or move sideways, e.g. source -> destination)
            // immediately; problems demand an instant reaction.
            self.mode = target;
            self.clear_streak = 0;
        } else {
            // De-escalate only after a sustained clear streak.
            self.clear_streak += 1;
            if self.clear_streak >= self.clear_after_updates {
                self.mode = target;
                self.clear_streak = 0;
            }
        }
        self.mode != previous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;
    use dg_trace::LinkCondition;

    fn setup() -> (Graph, TargetedRedundancy) {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        // Pin the hold-down at 2 updates; the de-escalation tests below
        // depend on it regardless of the library default.
        let params = SchemeParams { clear_after_updates: 2, ..SchemeParams::default() };
        let s = TargetedRedundancy::new(&g, flow, ServiceRequirement::default(), &params).unwrap();
        (g, s)
    }

    fn impair_source(g: &Graph, s: &TargetedRedundancy, state: &mut NetworkState) {
        for &e in g.out_edges(s.flow().source) {
            state.set_condition(e, LinkCondition::new(0.5, Micros::ZERO));
        }
    }

    fn impair_destination(g: &Graph, s: &TargetedRedundancy, state: &mut NetworkState) {
        for &e in g.in_edges(s.flow().destination) {
            state.set_condition(e, LinkCondition::new(0.5, Micros::ZERO));
        }
    }

    #[test]
    fn starts_in_normal_mode_with_disjoint_pair() {
        let (g, s) = setup();
        assert_eq!(s.mode(), TargetedMode::Normal);
        assert_eq!(s.current().forwarding_edges(&g, s.flow().source).count(), 2);
    }

    #[test]
    fn source_problem_graph_uses_every_source_neighbor() {
        let (g, s) = setup();
        let sg = s.graph_for_mode(TargetedMode::SourceProblem);
        let out_degree = g.out_edges(s.flow().source).len();
        assert_eq!(
            sg.forwarding_edges(&g, s.flow().source).count(),
            out_degree,
            "source-problem graph should branch on all {out_degree} neighbours"
        );
        assert!(sg.is_superset_of(s.graph_for_mode(TargetedMode::Normal)));
    }

    #[test]
    fn destination_problem_graph_enters_on_every_neighbor() {
        let (g, s) = setup();
        let dgr = s.graph_for_mode(TargetedMode::DestinationProblem);
        let in_degree = g.in_edges(s.flow().destination).len();
        let entering =
            dgr.edges().iter().filter(|&&e| g.edge(e).dst == s.flow().destination).count();
        assert_eq!(entering, in_degree);
        assert!(dgr.is_superset_of(s.graph_for_mode(TargetedMode::Normal)));
    }

    #[test]
    fn robust_graph_is_the_union() {
        let (g, s) = setup();
        let robust = s.graph_for_mode(TargetedMode::Robust);
        assert!(robust.is_superset_of(s.graph_for_mode(TargetedMode::SourceProblem)));
        assert!(robust.is_superset_of(s.graph_for_mode(TargetedMode::DestinationProblem)));
        // Still cheaper than flooding.
        let flood = crate::scheme::TimeConstrainedFlooding::new(
            &g,
            s.flow(),
            ServiceRequirement::default(),
        )
        .unwrap();
        assert!(robust.cost(&g) < flood.current().cost(&g));
    }

    #[test]
    fn all_graphs_meet_the_deadline() {
        let (g, s) = setup();
        for mode in [
            TargetedMode::Normal,
            TargetedMode::SourceProblem,
            TargetedMode::DestinationProblem,
            TargetedMode::Robust,
        ] {
            assert!(
                s.graph_for_mode(mode).best_latency(&g) <= Micros::from_millis(65),
                "{mode:?} graph misses the deadline"
            );
        }
    }

    #[test]
    fn escalates_immediately_on_source_problem() {
        let (g, mut s) = setup();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        impair_source(&g, &s, &mut state);
        assert!(s.update(&g, &state));
        assert_eq!(s.mode(), TargetedMode::SourceProblem);
    }

    #[test]
    fn escalates_to_robust_on_both() {
        let (g, mut s) = setup();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        impair_source(&g, &s, &mut state);
        impair_destination(&g, &s, &mut state);
        assert!(s.update(&g, &state));
        assert_eq!(s.mode(), TargetedMode::Robust);
    }

    #[test]
    fn deescalates_only_after_clear_streak() {
        let (g, mut s) = setup();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        impair_destination(&g, &s, &mut state);
        s.update(&g, &state);
        assert_eq!(s.mode(), TargetedMode::DestinationProblem);

        let clean = NetworkState::clean(g.edge_count(), Micros::from_secs(10));
        assert!(!s.update(&g, &clean), "first clear update holds the graph");
        assert_eq!(s.mode(), TargetedMode::DestinationProblem);
        assert!(s.update(&g, &clean), "second clear update releases it");
        assert_eq!(s.mode(), TargetedMode::Normal);
    }

    #[test]
    fn problem_streak_resets_on_reescalation() {
        let (g, mut s) = setup();
        let mut bad = NetworkState::clean(g.edge_count(), Micros::ZERO);
        impair_source(&g, &s, &mut bad);
        let clean = NetworkState::clean(g.edge_count(), Micros::from_secs(10));
        s.update(&g, &bad);
        s.update(&g, &clean); // streak 1
        s.update(&g, &bad); // problem returns; streak must reset
        s.update(&g, &clean); // streak 1 again
        assert_eq!(s.mode(), TargetedMode::SourceProblem);
        s.update(&g, &clean); // streak 2 -> release
        assert_eq!(s.mode(), TargetedMode::Normal);
    }

    #[test]
    fn loss_on_unused_links_does_not_escalate() {
        let (g, mut s) = setup();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        // Severe loss far from the flow's normal graph.
        let mia = g.node_by_name("MIA").unwrap();
        for &e in g.out_edges(mia) {
            state.set_condition(e, LinkCondition::down());
        }
        assert!(!s.update(&g, &state));
        assert_eq!(s.mode(), TargetedMode::Normal);
    }

    #[test]
    fn branch_limit_caps_problem_graph_size() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let req = ServiceRequirement::default();
        let sizes: Vec<usize> = [Some(0), Some(1), Some(2), None]
            .into_iter()
            .map(|limit| {
                let params =
                    SchemeParams { problem_branch_limit: limit, ..SchemeParams::default() };
                TargetedRedundancy::new(&g, flow, req, &params)
                    .unwrap()
                    .graph_for_mode(TargetedMode::SourceProblem)
                    .len()
            })
            .collect();
        // Limit 0 is exactly the disjoint pair; each extra branch grows
        // the graph; the unlimited graph is the largest.
        let normal = TargetedRedundancy::new(&g, flow, req, &SchemeParams::default())
            .unwrap()
            .graph_for_mode(TargetedMode::Normal)
            .len();
        assert_eq!(sizes[0], normal);
        assert!(sizes[0] < sizes[1]);
        assert!(sizes[1] <= sizes[2]);
        assert!(sizes[2] <= sizes[3]);
        // NYC has degree 5 and the pair uses 2, so the unlimited source
        // graph branches on all 3 remaining neighbours.
        let unlimited = TargetedRedundancy::new(&g, flow, req, &SchemeParams::default()).unwrap();
        assert_eq!(
            unlimited
                .graph_for_mode(TargetedMode::SourceProblem)
                .forwarding_edges(&g, flow.source)
                .count(),
            g.out_edges(flow.source).len()
        );
    }

    #[test]
    fn limited_branches_prefer_lower_latency() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let req = ServiceRequirement::default();
        let one = SchemeParams { problem_branch_limit: Some(1), ..SchemeParams::default() };
        let s = TargetedRedundancy::new(&g, flow, req, &one).unwrap();
        let sg = s.graph_for_mode(TargetedMode::SourceProblem);
        // The one extra branch still meets the deadline.
        assert!(sg.best_latency(&g) <= req.deadline);
        assert_eq!(sg.forwarding_edges(&g, flow.source).count(), 3);
    }

    #[test]
    fn switching_changes_cost_modestly() {
        let (g, s) = setup();
        let normal_cost = s.graph_for_mode(TargetedMode::Normal).cost(&g);
        let source_cost = s.graph_for_mode(TargetedMode::SourceProblem).cost(&g);
        assert!(source_cost > normal_cost);
        // The problem graph roughly doubles cost at worst — nowhere near
        // flooding's blanket coverage.
        assert!(source_cost <= normal_cost * 3);
    }
}
