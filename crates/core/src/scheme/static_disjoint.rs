//! Two fixed disjoint paths.

use crate::scheme::{RoutingScheme, SchemeKind};
use crate::{CoreError, DisseminationGraph, Flow};
use dg_topology::algo::disjoint::{disjoint_pair, Disjointness};
use dg_topology::Graph;
use dg_trace::NetworkState;

/// Sends every packet on both paths of a minimum-total-latency disjoint
/// pair computed once at flow setup. The paper's analysis shows this
/// already covers roughly 45 % of the single-path-to-optimal gap.
#[derive(Debug, Clone)]
pub struct StaticTwoDisjoint {
    flow: Flow,
    graph: DisseminationGraph,
}

impl StaticTwoDisjoint {
    /// Computes the disjoint pair for `flow` at baseline latencies.
    ///
    /// # Errors
    ///
    /// Returns [`dg_topology::TopologyError::InsufficientDisjointPaths`]
    /// (wrapped) when the topology lacks two disjoint routes.
    pub fn new(
        topology: &Graph,
        flow: Flow,
        disjointness: Disjointness,
    ) -> Result<Self, CoreError> {
        let (p1, p2) = disjoint_pair(topology, flow.source, flow.destination, disjointness)?;
        Ok(StaticTwoDisjoint { flow, graph: DisseminationGraph::from_paths(topology, &[p1, p2])? })
    }

    /// Wraps an already-computed disjoint-pair graph (typically the
    /// cached `normal` graph of a shared bundle; see
    /// [`crate::cache::GraphCache`]).
    pub fn from_graph(flow: Flow, graph: DisseminationGraph) -> Self {
        StaticTwoDisjoint { flow, graph }
    }
}

impl RoutingScheme for StaticTwoDisjoint {
    fn kind(&self) -> SchemeKind {
        SchemeKind::StaticTwoDisjoint
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        &self.graph
    }

    fn update(&mut self, _topology: &Graph, _state: &NetworkState) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};

    #[test]
    fn builds_disjoint_union() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("WAS").unwrap(), g.node_by_name("LAX").unwrap());
        let s = StaticTwoDisjoint::new(&g, flow, Disjointness::Node).unwrap();
        // The source forwards on exactly two edges.
        assert_eq!(s.current().forwarding_edges(&g, flow.source).count(), 2);
        // Exactly two edges enter the destination.
        let into_dst =
            s.current().edges().iter().filter(|&&e| g.edge(e).dst == flow.destination).count();
        assert_eq!(into_dst, 2);
    }

    #[test]
    fn never_updates() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("BOS").unwrap(), g.node_by_name("SJC").unwrap());
        let mut s = StaticTwoDisjoint::new(&g, flow, Disjointness::Node).unwrap();
        let state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        assert!(!s.update(&g, &state));
        assert_eq!(s.kind(), SchemeKind::StaticTwoDisjoint);
    }
}
