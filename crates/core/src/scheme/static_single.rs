//! The traditional baseline: one fixed shortest path.

use crate::scheme::{RoutingScheme, SchemeKind};
use crate::{CoreError, DisseminationGraph, Flow};
use dg_topology::algo::dijkstra;
use dg_topology::Graph;
use dg_trace::NetworkState;

/// Routes every packet on the latency-shortest path computed once at
/// flow setup, regardless of conditions — what a conventional overlay
/// (or plain IP routing with stable paths) gives you.
#[derive(Debug, Clone)]
pub struct StaticSinglePath {
    flow: Flow,
    graph: DisseminationGraph,
}

impl StaticSinglePath {
    /// Computes the shortest path for `flow` at baseline latencies.
    ///
    /// # Errors
    ///
    /// Returns a topology error when no route exists.
    pub fn new(topology: &Graph, flow: Flow) -> Result<Self, CoreError> {
        let path = dijkstra::shortest_path(topology, flow.source, flow.destination)?;
        Ok(StaticSinglePath { flow, graph: DisseminationGraph::from_path(topology, &path) })
    }
}

impl RoutingScheme for StaticSinglePath {
    fn kind(&self) -> SchemeKind {
        SchemeKind::StaticSinglePath
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        &self.graph
    }

    fn update(&mut self, _topology: &Graph, _state: &NetworkState) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};
    use dg_trace::LinkCondition;

    #[test]
    fn never_changes() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SEA").unwrap());
        let mut s = StaticSinglePath::new(&g, flow).unwrap();
        let before = s.current().clone();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        for &e in before.edges() {
            state.set_condition(e, LinkCondition::down());
        }
        assert!(!s.update(&g, &state));
        assert_eq!(s.current(), &before);
        assert_eq!(s.kind(), SchemeKind::StaticSinglePath);
    }

    #[test]
    fn uses_the_shortest_path() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("JHU").unwrap(), g.node_by_name("DEN").unwrap());
        let s = StaticSinglePath::new(&g, flow).unwrap();
        let sp = dijkstra::shortest_path(&g, flow.source, flow.destination).unwrap();
        assert_eq!(s.current().best_latency(&g), sp.latency(&g));
        assert_eq!(s.current().len(), sp.len());
    }

    #[test]
    fn errors_on_missing_route() {
        let g = presets::north_america_12();
        let n = g.node_by_name("NYC").unwrap();
        assert!(StaticSinglePath::new(&g, Flow::new(n, n)).is_err());
    }
}
