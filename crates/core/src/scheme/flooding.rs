//! Time-constrained flooding: the optimal benchmark.

use crate::scheme::{RoutingScheme, SchemeKind};
use crate::{CoreError, DisseminationGraph, Flow, ServiceRequirement};
use dg_topology::algo::reach;
use dg_topology::Graph;
use dg_trace::NetworkState;

/// Floods every packet over every edge that can still contribute to
/// on-time delivery. No scheme can beat its timeliness/reliability —
/// any on-deadline route a packet could take is included — which makes
/// it the paper's optimality benchmark; its cost (every packet on
/// dozens of links) is what makes it prohibitive in practice.
#[derive(Debug, Clone)]
pub struct TimeConstrainedFlooding {
    flow: Flow,
    graph: DisseminationGraph,
}

impl TimeConstrainedFlooding {
    /// Computes the deadline-feasible edge set for `flow`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DeadlineInfeasible`] when even the shortest
    /// route misses the deadline.
    pub fn new(
        topology: &Graph,
        flow: Flow,
        requirement: ServiceRequirement,
    ) -> Result<Self, CoreError> {
        let edges = reach::time_constrained_edges(
            topology,
            flow.source,
            flow.destination,
            requirement.deadline,
        )?;
        let graph = DisseminationGraph::new(topology, flow.source, flow.destination, edges)
            .map_err(|_| CoreError::DeadlineInfeasible {
                source: flow.source,
                destination: flow.destination,
            })?;
        Ok(TimeConstrainedFlooding { flow, graph })
    }
}

impl RoutingScheme for TimeConstrainedFlooding {
    fn kind(&self) -> SchemeKind {
        SchemeKind::TimeConstrainedFlooding
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        &self.graph
    }

    fn update(&mut self, _topology: &Graph, _state: &NetworkState) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};

    #[test]
    fn covers_a_large_edge_fraction() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let s = TimeConstrainedFlooding::new(&g, flow, ServiceRequirement::default()).unwrap();
        // With a 65 ms budget over a ~30 ms shortest path, most of the
        // continental mesh is usable.
        assert!(s.current().len() > g.edge_count() / 3);
        assert!(s.current().best_latency(&g) <= Micros::from_millis(65));
    }

    #[test]
    fn infeasible_deadline_errors() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let err =
            TimeConstrainedFlooding::new(&g, flow, ServiceRequirement::new(Micros::from_millis(5)))
                .unwrap_err();
        assert!(matches!(err, CoreError::DeadlineInfeasible { .. }));
    }

    #[test]
    fn tighter_deadline_means_smaller_graph() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("BOS").unwrap(), g.node_by_name("LAX").unwrap());
        let wide = TimeConstrainedFlooding::new(
            &g,
            flow,
            ServiceRequirement::new(Micros::from_millis(100)),
        )
        .unwrap();
        let tight = TimeConstrainedFlooding::new(
            &g,
            flow,
            ServiceRequirement::new(Micros::from_millis(45)),
        )
        .unwrap();
        assert!(tight.current().len() < wide.current().len());
        assert!(wide.current().is_superset_of(tight.current()));
    }

    #[test]
    fn static_scheme_never_updates() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("WAS").unwrap(), g.node_by_name("DEN").unwrap());
        let mut s = TimeConstrainedFlooding::new(&g, flow, ServiceRequirement::default()).unwrap();
        let state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        assert!(!s.update(&g, &state));
        assert_eq!(s.kind(), SchemeKind::TimeConstrainedFlooding);
    }
}
