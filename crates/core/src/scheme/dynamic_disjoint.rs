//! Two disjoint paths re-routed on monitoring updates.

use crate::scheme::{expected_set_weight, RoutingScheme, SchemeKind, SchemeParams};
use crate::{CoreError, DisseminationGraph, Flow};
use dg_topology::algo::disjoint::{disjoint_pair, k_disjoint_paths_weighted, Disjointness};
use dg_topology::Graph;
use dg_trace::NetworkState;

/// Recomputes the minimum-total-expected-latency disjoint pair at every
/// monitoring update, switching only past a hysteresis margin. In the
/// paper's evaluation this covers roughly 70 % of the
/// single-path-to-optimal gap.
#[derive(Debug, Clone)]
pub struct DynamicTwoDisjoint {
    flow: Flow,
    graph: DisseminationGraph,
    hysteresis: f64,
    disjointness: Disjointness,
}

impl DynamicTwoDisjoint {
    /// Starts on the baseline disjoint pair.
    ///
    /// # Errors
    ///
    /// Returns an error when the topology lacks two disjoint routes.
    pub fn new(topology: &Graph, flow: Flow, params: &SchemeParams) -> Result<Self, CoreError> {
        let (p1, p2) = disjoint_pair(topology, flow.source, flow.destination, params.disjointness)?;
        Ok(DynamicTwoDisjoint {
            flow,
            graph: DisseminationGraph::from_paths(topology, &[p1, p2])?,
            hysteresis: params.hysteresis,
            disjointness: params.disjointness,
        })
    }
}

impl RoutingScheme for DynamicTwoDisjoint {
    fn kind(&self) -> SchemeKind {
        SchemeKind::DynamicTwoDisjoint
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        &self.graph
    }

    fn update(&mut self, topology: &Graph, state: &NetworkState) -> bool {
        let candidate = match k_disjoint_paths_weighted(
            topology,
            self.flow.source,
            self.flow.destination,
            2,
            self.disjointness,
            |e| Some(crate::scheme::expected_edge_weight(topology, state, e) as i64),
        ) {
            Ok(paths) => paths,
            // Weights are total, so only a topology without two disjoint
            // routes fails here; keep the current pair.
            Err(_) => return false,
        };
        let Ok(next) = DisseminationGraph::from_paths(topology, &candidate) else {
            return false;
        };
        let current_weight =
            expected_set_weight(topology, state, self.graph.edges().iter().copied());
        let candidate_weight = expected_set_weight(topology, state, next.edges().iter().copied());
        let improvement_needed = (current_weight as f64 * (1.0 - self.hysteresis)) as u64;
        if candidate_weight < improvement_needed && next != self.graph {
            self.graph = next;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};
    use dg_trace::LinkCondition;

    fn setup() -> (Graph, DynamicTwoDisjoint) {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SEA").unwrap());
        let s = DynamicTwoDisjoint::new(&g, flow, &SchemeParams::default()).unwrap();
        (g, s)
    }

    #[test]
    fn stable_when_clean() {
        let (g, mut s) = setup();
        let state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        assert!(!s.update(&g, &state));
    }

    #[test]
    fn reroutes_around_middle_loss() {
        let (g, mut s) = setup();
        let before = s.current().clone();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        // Kill a middle edge of the current pair (not source-adjacent).
        let victim = before
            .edges()
            .iter()
            .copied()
            .find(|&e| g.edge(e).src != s.flow().source && g.edge(e).dst != s.flow().destination)
            .expect("pair has a middle edge");
        state.set_condition(victim, LinkCondition::down());
        assert!(s.update(&g, &state));
        assert!(!s.current().contains(victim));
        // The new pair still forwards on two source edges.
        assert_eq!(s.current().forwarding_edges(&g, s.flow().source).count(), 2);
    }

    #[test]
    fn cannot_dodge_a_full_source_problem() {
        let (g, mut s) = setup();
        let src = s.flow().source;
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        for &e in g.out_edges(src) {
            state.set_condition(e, LinkCondition::new(0.8, Micros::ZERO));
        }
        s.update(&g, &state);
        // Whatever pair it picked, both source edges are still lossy:
        // this is exactly the case targeted redundancy exists for.
        for e in s.current().forwarding_edges(&g, src) {
            assert!(state.condition(e).loss_rate >= 0.8);
        }
    }

    #[test]
    fn heals_back_after_problem_clears() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SEA").unwrap());
        // Zero hysteresis so the heal-back is not (correctly) suppressed
        // as a marginal improvement.
        let params = SchemeParams { hysteresis: 0.0, ..SchemeParams::default() };
        let mut s = DynamicTwoDisjoint::new(&g, flow, &params).unwrap();
        let before = s.current().clone();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        state.set_condition(before.edges()[1], LinkCondition::down());
        assert!(s.update(&g, &state));
        let clean = NetworkState::clean(g.edge_count(), Micros::from_secs(10));
        assert!(s.update(&g, &clean));
        assert_eq!(s.current(), &before);
    }
}
