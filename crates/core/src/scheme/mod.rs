//! Routing schemes expressed as dissemination graphs.
//!
//! Every scheme is a per-flow object implementing [`RoutingScheme`]:
//! it exposes a current [`DisseminationGraph`] and reacts to network
//! monitoring updates ([`NetworkState`]) by (possibly) changing it.
//! Static schemes never change; dynamic schemes re-route; the paper's
//! targeted-redundancy scheme switches between precomputed graphs.

use crate::{CoreError, DisseminationGraph, Flow, ServiceRequirement};
use dg_topology::algo::disjoint::Disjointness;
use dg_topology::{EdgeId, Graph};
use dg_trace::NetworkState;
use serde::{Deserialize, Serialize};
use std::fmt;

mod dynamic_disjoint;
mod dynamic_single;
mod flooding;
mod k_disjoint;
mod static_disjoint;
mod static_single;
mod targeted;

pub use dynamic_disjoint::DynamicTwoDisjoint;
pub use dynamic_single::DynamicSinglePath;
pub use flooding::TimeConstrainedFlooding;
pub use k_disjoint::StaticKDisjoint;
pub use static_disjoint::StaticTwoDisjoint;
pub use static_single::StaticSinglePath;
pub use targeted::{TargetedGraphs, TargetedMode, TargetedRedundancy};

/// A per-flow routing scheme.
///
/// Implementations are stateful: dynamic schemes remember their current
/// route and apply hysteresis across updates.
pub trait RoutingScheme: fmt::Debug + Send {
    /// Which scheme this is.
    fn kind(&self) -> SchemeKind;

    /// The flow this instance routes.
    fn flow(&self) -> Flow;

    /// The dissemination graph currently in use.
    fn current(&self) -> &DisseminationGraph;

    /// Reacts to a monitoring update. Returns `true` when the current
    /// dissemination graph changed.
    fn update(&mut self, topology: &Graph, state: &NetworkState) -> bool;
}

/// The six routing schemes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// One fixed shortest path (the traditional baseline).
    StaticSinglePath,
    /// One shortest path, recomputed on every update.
    DynamicSinglePath,
    /// Two fixed node-disjoint paths.
    StaticTwoDisjoint,
    /// Two node-disjoint paths, recomputed on every update.
    DynamicTwoDisjoint,
    /// Two disjoint paths plus precomputed problem graphs — the paper's
    /// contribution.
    TargetedRedundancy,
    /// Flood on every edge that can meet the deadline — the optimal,
    /// prohibitively expensive benchmark.
    TimeConstrainedFlooding,
    /// Extension: k fixed disjoint paths (k >= 2) — the "just add more
    /// paths" ablation of targeted redundancy. Not part of the paper's
    /// headline comparison ([`SchemeKind::ALL`] excludes it). Flows with
    /// fewer than k disjoint routes use as many as exist.
    StaticKDisjoint(u8),
}

impl SchemeKind {
    /// All schemes, in the order the paper's tables list them.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::StaticSinglePath,
        SchemeKind::DynamicSinglePath,
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::DynamicTwoDisjoint,
        SchemeKind::TargetedRedundancy,
        SchemeKind::TimeConstrainedFlooding,
    ];

    /// Short table label, e.g. `"static-2-disjoint"`.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::StaticSinglePath => "static-single-path",
            SchemeKind::DynamicSinglePath => "dynamic-single-path",
            SchemeKind::StaticTwoDisjoint => "static-2-disjoint",
            SchemeKind::DynamicTwoDisjoint => "dynamic-2-disjoint",
            SchemeKind::TargetedRedundancy => "targeted-redundancy",
            SchemeKind::TimeConstrainedFlooding => "time-constrained-flooding",
            SchemeKind::StaticKDisjoint(3) => "static-3-disjoint",
            SchemeKind::StaticKDisjoint(4) => "static-4-disjoint",
            SchemeKind::StaticKDisjoint(_) => "static-k-disjoint",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Tunables shared by the scheme constructors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeParams {
    /// Loss rate at which a link counts as problematic (drives both the
    /// targeted-redundancy detector and dynamic avoidance).
    pub problem_loss_threshold: f64,
    /// Relative improvement a dynamic scheme requires before switching
    /// routes (flap damping).
    pub hysteresis: f64,
    /// Updates an endpoint must stay clean before targeted redundancy
    /// falls back to the plain disjoint pair.
    pub clear_after_updates: u32,
    /// Disjointness required of path pairs.
    pub disjointness: Disjointness,
    /// Cap on the *extra* branches each targeted problem graph adds
    /// beyond the disjoint pair, lowest-latency branches first. `None`
    /// (the paper's construction) uses every usable neighbour; smaller
    /// caps trade coverage for escalated-mode cost (see the
    /// `ablation_branches` experiment).
    pub problem_branch_limit: Option<u8>,
}

impl Default for SchemeParams {
    fn default() -> Self {
        SchemeParams {
            problem_loss_threshold: 0.05,
            hysteresis: 0.05,
            clear_after_updates: 1,
            disjointness: Disjointness::Node,
            problem_branch_limit: None,
        }
    }
}

/// Constructs a boxed scheme of the requested kind for one flow.
///
/// # Errors
///
/// Propagates construction failures: unreachable endpoints, too few
/// disjoint paths, or an infeasible deadline.
///
/// # Example
///
/// ```
/// use dg_topology::presets;
/// use dg_core::{Flow, ServiceRequirement};
/// use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
///
/// let g = presets::north_america_12();
/// let flow = Flow::new(
///     g.node_by_name("WAS").unwrap(),
///     g.node_by_name("SEA").unwrap(),
/// );
/// for kind in SchemeKind::ALL {
///     let s = build_scheme(kind, &g, flow, ServiceRequirement::default(),
///                          &SchemeParams::default())?;
///     assert_eq!(s.kind(), kind);
/// }
/// # Ok::<(), dg_core::CoreError>(())
/// ```
pub fn build_scheme(
    kind: SchemeKind,
    topology: &Graph,
    flow: Flow,
    requirement: ServiceRequirement,
    params: &SchemeParams,
) -> Result<Box<dyn RoutingScheme>, CoreError> {
    Ok(match kind {
        SchemeKind::StaticSinglePath => Box::new(StaticSinglePath::new(topology, flow)?),
        SchemeKind::DynamicSinglePath => Box::new(DynamicSinglePath::new(topology, flow, params)?),
        SchemeKind::StaticTwoDisjoint => {
            Box::new(StaticTwoDisjoint::new(topology, flow, params.disjointness)?)
        }
        SchemeKind::DynamicTwoDisjoint => {
            Box::new(DynamicTwoDisjoint::new(topology, flow, params)?)
        }
        SchemeKind::TargetedRedundancy => {
            Box::new(TargetedRedundancy::new(topology, flow, requirement, params)?)
        }
        SchemeKind::TimeConstrainedFlooding => {
            Box::new(TimeConstrainedFlooding::new(topology, flow, requirement)?)
        }
        SchemeKind::StaticKDisjoint(k) => Box::new(StaticKDisjoint::new_with_fallback(
            topology,
            flow,
            usize::from(k),
            params.disjointness,
        )?),
    })
}

/// Weight cap standing in for "unusable": a dead link is penalized far
/// beyond any real route but stays finite so routing remains total.
const WEIGHT_CAP: f64 = 1e13;

/// Expected-latency edge weight under current conditions, in
/// microseconds: effective latency scaled by `1 / (1 - loss)²` (the
/// expected sendings until a copy and its potential retransmission get
/// through). Lossier links become rapidly less attractive; a dead link
/// is effectively unusable but never disconnects the graph.
pub fn expected_edge_weight(graph: &Graph, state: &NetworkState, edge: EdgeId) -> u64 {
    let c = state.condition(edge);
    let eff = graph.edge(edge).latency.saturating_add(c.extra_latency).as_micros() as f64;
    let survive = (1.0 - c.loss_rate).max(1e-6);
    (eff / (survive * survive)).min(WEIGHT_CAP) as u64
}

/// Total [`expected_edge_weight`] over a set of edges.
pub fn expected_set_weight<I: IntoIterator<Item = EdgeId>>(
    graph: &Graph,
    state: &NetworkState,
    edges: I,
) -> u64 {
    edges.into_iter().map(|e| expected_edge_weight(graph, state, e)).fold(0u64, u64::saturating_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};
    use dg_trace::LinkCondition;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SchemeKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 6);
        assert_eq!(SchemeKind::TargetedRedundancy.to_string(), "targeted-redundancy");
    }

    #[test]
    fn expected_weight_grows_with_loss() {
        let g = presets::north_america_12();
        let e = EdgeId::new(0);
        let clean = NetworkState::clean(g.edge_count(), Micros::ZERO);
        let base = expected_edge_weight(&g, &clean, e);
        assert_eq!(base, g.edge(e).latency.as_micros());

        let mut lossy = clean.clone();
        lossy.set_condition(e, LinkCondition::new(0.5, Micros::ZERO));
        assert_eq!(expected_edge_weight(&g, &lossy, e), base * 4);

        let mut dead = clean.clone();
        dead.set_condition(e, LinkCondition::down());
        assert_eq!(expected_edge_weight(&g, &dead, e), WEIGHT_CAP as u64);
    }

    #[test]
    fn extra_latency_counts() {
        let g = presets::north_america_12();
        let e = EdgeId::new(3);
        let mut st = NetworkState::clean(g.edge_count(), Micros::ZERO);
        st.set_condition(e, LinkCondition::new(0.0, Micros::from_millis(5)));
        assert_eq!(expected_edge_weight(&g, &st, e), g.edge(e).latency.as_micros() + 5_000);
    }

    #[test]
    fn set_weight_sums() {
        let g = presets::north_america_12();
        let st = NetworkState::clean(g.edge_count(), Micros::ZERO);
        let edges = [EdgeId::new(0), EdgeId::new(1)];
        assert_eq!(
            expected_set_weight(&g, &st, edges),
            g.edge(EdgeId::new(0)).latency.as_micros() + g.edge(EdgeId::new(1)).latency.as_micros()
        );
    }

    #[test]
    fn build_scheme_builds_all_kinds() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("BOS").unwrap(), g.node_by_name("DEN").unwrap());
        for kind in SchemeKind::ALL {
            let s = build_scheme(
                kind,
                &g,
                flow,
                ServiceRequirement::default(),
                &SchemeParams::default(),
            )
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(s.flow(), flow);
            assert_eq!(s.current().source(), flow.source);
            assert_eq!(s.current().destination(), flow.destination);
        }
    }

    #[test]
    fn flooding_is_superset_of_all_other_schemes() {
        let g = presets::north_america_12();
        for (s, t) in presets::transcontinental_flows(&g) {
            let flow = Flow::new(s, t);
            let req = ServiceRequirement::default();
            let params = SchemeParams::default();
            let flood =
                build_scheme(SchemeKind::TimeConstrainedFlooding, &g, flow, req, &params).unwrap();
            for kind in [
                SchemeKind::StaticSinglePath,
                SchemeKind::StaticTwoDisjoint,
                SchemeKind::TargetedRedundancy,
            ] {
                let other = build_scheme(kind, &g, flow, req, &params).unwrap();
                assert!(
                    flood.current().is_superset_of(other.current()),
                    "{kind} not within flooding for {}",
                    flow.label(&g)
                );
            }
        }
    }

    #[test]
    fn cost_ordering_matches_paper() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("LAX").unwrap());
        let req = ServiceRequirement::default();
        let params = SchemeParams::default();
        let cost = |kind| build_scheme(kind, &g, flow, req, &params).unwrap().current().cost(&g);
        let single = cost(SchemeKind::StaticSinglePath);
        let disjoint = cost(SchemeKind::StaticTwoDisjoint);
        let targeted = cost(SchemeKind::TargetedRedundancy);
        let flooding = cost(SchemeKind::TimeConstrainedFlooding);
        assert!(single < disjoint, "single {single} < disjoint {disjoint}");
        // In normal mode targeted uses exactly the disjoint pair.
        assert_eq!(targeted, disjoint);
        assert!(disjoint < flooding, "disjoint {disjoint} < flooding {flooding}");
    }
}
