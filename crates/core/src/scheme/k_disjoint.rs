//! K disjoint paths (k ≥ 2): the "just add more paths" alternative.
//!
//! The dissemination-graph framework makes k-path routing a one-liner,
//! and comparing it against targeted redundancy is the natural ablation
//! of the paper's design: a third or fourth disjoint path adds
//! *permanent* cost everywhere, while targeted redundancy adds
//! redundancy only where and when problems occur. The ablation binary
//! (`dg-bench --bin ablation_kpaths`) quantifies the difference.

use crate::scheme::{RoutingScheme, SchemeKind};
use crate::{CoreError, DisseminationGraph, Flow};
use dg_topology::algo::disjoint::{k_disjoint_paths, Disjointness};
use dg_topology::{Graph, TopologyError};
use dg_trace::NetworkState;

/// Routes every packet over `k` disjoint paths computed once at setup.
#[derive(Debug, Clone)]
pub struct StaticKDisjoint {
    flow: Flow,
    k: usize,
    graph: DisseminationGraph,
}

impl StaticKDisjoint {
    /// Computes exactly `k` disjoint paths for `flow`.
    ///
    /// # Errors
    ///
    /// Returns an error when the topology lacks `k` disjoint routes;
    /// see [`StaticKDisjoint::new_with_fallback`] for the lenient
    /// variant.
    pub fn new(
        topology: &Graph,
        flow: Flow,
        k: usize,
        disjointness: Disjointness,
    ) -> Result<Self, CoreError> {
        let paths = k_disjoint_paths(topology, flow.source, flow.destination, k, disjointness)?;
        Ok(StaticKDisjoint { flow, k, graph: DisseminationGraph::from_paths(topology, &paths)? })
    }

    /// Computes `k` disjoint paths, or as many as exist if fewer; the
    /// actual count is available via [`StaticKDisjoint::paths_used`].
    ///
    /// # Errors
    ///
    /// Returns an error only when no route at all exists.
    pub fn new_with_fallback(
        topology: &Graph,
        flow: Flow,
        k: usize,
        disjointness: Disjointness,
    ) -> Result<Self, CoreError> {
        match StaticKDisjoint::new(topology, flow, k, disjointness) {
            Ok(s) => Ok(s),
            Err(CoreError::Topology(TopologyError::InsufficientDisjointPaths {
                available,
                ..
            })) if available > 0 => StaticKDisjoint::new(topology, flow, available, disjointness),
            Err(e) => Err(e),
        }
    }

    /// How many disjoint paths this instance actually uses.
    pub fn paths_used(&self) -> usize {
        self.k
    }
}

impl RoutingScheme for StaticKDisjoint {
    fn kind(&self) -> SchemeKind {
        SchemeKind::StaticKDisjoint(self.k.min(u8::MAX as usize) as u8)
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        &self.graph
    }

    fn update(&mut self, _topology: &Graph, _state: &NetworkState) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};

    fn flow(g: &Graph) -> Flow {
        Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap())
    }

    #[test]
    fn three_paths_forward_on_three_source_edges() {
        let g = presets::north_america_12();
        let f = flow(&g);
        let s = StaticKDisjoint::new(&g, f, 3, Disjointness::Node).unwrap();
        assert_eq!(s.paths_used(), 3);
        assert_eq!(s.current().forwarding_edges(&g, f.source).count(), 3);
        assert_eq!(s.kind(), SchemeKind::StaticKDisjoint(3));
        assert_eq!(s.kind().label(), "static-3-disjoint");
    }

    #[test]
    fn cost_grows_with_k() {
        let g = presets::north_america_12();
        let f = flow(&g);
        let costs: Vec<u64> = (2..=4)
            .map(|k| {
                StaticKDisjoint::new_with_fallback(&g, f, k, Disjointness::Node)
                    .unwrap()
                    .current()
                    .cost(&g)
            })
            .collect();
        assert!(costs[0] < costs[1], "{costs:?}");
        assert!(costs[1] <= costs[2], "{costs:?}");
    }

    #[test]
    fn fallback_caps_at_available_paths() {
        let g = presets::ring(6, Micros::from_millis(2));
        let f = Flow::new(g.node_by_name("R0").unwrap(), g.node_by_name("R3").unwrap());
        assert!(StaticKDisjoint::new(&g, f, 3, Disjointness::Node).is_err());
        let s = StaticKDisjoint::new_with_fallback(&g, f, 3, Disjointness::Node).unwrap();
        assert_eq!(s.paths_used(), 2, "a ring has exactly two disjoint routes");
    }

    #[test]
    fn static_scheme_never_updates() {
        let g = presets::north_america_12();
        let f = flow(&g);
        let mut s = StaticKDisjoint::new(&g, f, 3, Disjointness::Node).unwrap();
        let state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        assert!(!s.update(&g, &state));
    }

    #[test]
    fn all_paths_meet_deadline_budget() {
        let g = presets::north_america_12();
        for (src, dst) in presets::transcontinental_flows(&g) {
            let f = Flow::new(src, dst);
            let s = StaticKDisjoint::new_with_fallback(&g, f, 3, Disjointness::Node)
                .unwrap_or_else(|e| panic!("{}: {e}", f.label(&g)));
            assert!(s.current().best_latency(&g) <= Micros::from_millis(65));
            assert!(s.paths_used() >= 2, "{}", f.label(&g));
        }
    }
}
