//! A single path re-routed on monitoring updates.

use crate::scheme::{expected_set_weight, RoutingScheme, SchemeKind, SchemeParams};
use crate::{CoreError, DisseminationGraph, Flow};
use dg_topology::algo::dijkstra;
use dg_topology::Graph;
use dg_trace::NetworkState;

/// Routes on one path, recomputed over loss-penalized expected latency
/// at every monitoring update, with hysteresis so marginal differences
/// do not cause route flapping.
#[derive(Debug, Clone)]
pub struct DynamicSinglePath {
    flow: Flow,
    graph: DisseminationGraph,
    hysteresis: f64,
}

impl DynamicSinglePath {
    /// Starts on the baseline shortest path.
    ///
    /// # Errors
    ///
    /// Returns a topology error when no route exists.
    pub fn new(topology: &Graph, flow: Flow, params: &SchemeParams) -> Result<Self, CoreError> {
        let path = dijkstra::shortest_path(topology, flow.source, flow.destination)?;
        Ok(DynamicSinglePath {
            flow,
            graph: DisseminationGraph::from_path(topology, &path),
            hysteresis: params.hysteresis,
        })
    }
}

impl RoutingScheme for DynamicSinglePath {
    fn kind(&self) -> SchemeKind {
        SchemeKind::DynamicSinglePath
    }

    fn flow(&self) -> Flow {
        self.flow
    }

    fn current(&self) -> &DisseminationGraph {
        &self.graph
    }

    fn update(&mut self, topology: &Graph, state: &NetworkState) -> bool {
        let candidate = match dijkstra::shortest_path_weighted(
            topology,
            self.flow.source,
            self.flow.destination,
            |e| Some(crate::scheme::expected_edge_weight(topology, state, e)),
        ) {
            Ok(p) => p,
            // The weight function is total, so this only fires on a
            // disconnected topology; keep the current route.
            Err(_) => return false,
        };
        let current_weight =
            expected_set_weight(topology, state, self.graph.edges().iter().copied());
        let candidate_weight =
            expected_set_weight(topology, state, candidate.edges().iter().copied());
        let improvement_needed = (current_weight as f64 * (1.0 - self.hysteresis)) as u64;
        if candidate_weight < improvement_needed {
            let next = DisseminationGraph::from_path(topology, &candidate);
            if next != self.graph {
                self.graph = next;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};
    use dg_trace::LinkCondition;

    fn setup() -> (Graph, DynamicSinglePath) {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let s = DynamicSinglePath::new(&g, flow, &SchemeParams::default()).unwrap();
        (g, s)
    }

    #[test]
    fn stays_put_when_clean() {
        let (g, mut s) = setup();
        let state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        assert!(!s.update(&g, &state));
    }

    #[test]
    fn reroutes_around_a_dead_link() {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        // Zero hysteresis so the heal-back below is not (correctly)
        // suppressed as a marginal improvement.
        let params = SchemeParams { hysteresis: 0.0, ..SchemeParams::default() };
        let mut s = DynamicSinglePath::new(&g, flow, &params).unwrap();
        let before = s.current().clone();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        let victim = before.edges()[0];
        state.set_condition(victim, LinkCondition::down());
        assert!(s.update(&g, &state));
        assert!(!s.current().contains(victim));
        // And returns once the link heals (old route is strictly faster).
        let clean = NetworkState::clean(g.edge_count(), Micros::from_secs(10));
        let back = s.update(&g, &clean);
        assert!(back);
        assert_eq!(s.current(), &before);
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        let (g, mut s) = setup();
        let before = s.current().clone();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        // Tiny extra latency on the current route: not worth moving.
        state.set_condition(before.edges()[0], LinkCondition::new(0.0, Micros::from_micros(50)));
        assert!(!s.update(&g, &state));
        assert_eq!(s.current(), &before);
    }

    #[test]
    fn avoids_moderate_loss_when_alternative_exists() {
        let (g, mut s) = setup();
        let before = s.current().clone();
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        for &e in before.edges() {
            state.set_condition(e, LinkCondition::new(0.3, Micros::ZERO));
        }
        assert!(s.update(&g, &state));
        // New route avoids all the lossy edges (clean alternatives exist).
        for &e in s.current().edges() {
            assert!(state.condition(e).loss_rate < 0.3);
        }
    }
}
