//! Error type for dissemination-graph construction and scheme building.

use dg_topology::{NodeId, TopologyError};
use std::error::Error;
use std::fmt;

/// Errors produced by `dg-core`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying topology operation failed.
    Topology(TopologyError),
    /// The edge set does not connect the flow's source to its destination.
    Unreachable {
        /// Flow source.
        source: NodeId,
        /// Flow destination.
        destination: NodeId,
    },
    /// Paths passed to a union constructor had differing endpoints.
    MismatchedEndpoints,
    /// A dissemination-graph bitmask was too short for the topology.
    BitmaskTooShort {
        /// Bytes provided.
        got: usize,
        /// Bytes required.
        need: usize,
    },
    /// The deadline is too tight: even the shortest route misses it.
    DeadlineInfeasible {
        /// Flow source.
        source: NodeId,
        /// Flow destination.
        destination: NodeId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Topology(e) => write!(f, "{e}"),
            CoreError::Unreachable { source, destination } => {
                write!(f, "edge set does not connect {source} to {destination}")
            }
            CoreError::MismatchedEndpoints => {
                write!(f, "paths have mismatched endpoints")
            }
            CoreError::BitmaskTooShort { got, need } => {
                write!(f, "bitmask too short: got {got} bytes, need {need}")
            }
            CoreError::DeadlineInfeasible { source, destination } => {
                write!(f, "no route from {source} to {destination} meets the deadline")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::Unreachable { source: NodeId::new(0), destination: NodeId::new(1) };
        assert!(e.to_string().contains("does not connect"));
        assert!(e.source().is_none());

        let wrapped: CoreError = TopologyError::UnknownNode(NodeId::new(5)).into();
        assert!(wrapped.source().is_some());
        assert_eq!(wrapped.to_string(), "unknown node n5");
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
