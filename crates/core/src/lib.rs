//! Dissemination graphs: the unified routing framework of *Timely,
//! Reliable, and Cost-Effective Internet Transport Service Using
//! Dissemination Graphs* (Babay, Wagner, Dinitz, Amir — ICDCS 2017).
//!
//! A [`DisseminationGraph`] is an arbitrary subgraph of the overlay on
//! which every packet of a flow is forwarded: each overlay node that
//! receives the packet forwards it once on each of its out-edges in the
//! graph. Single paths, disjoint path pairs, and flooding are all just
//! special cases — which is what lets one transport service switch
//! routing strategies per flow and per network condition.
//!
//! The [`scheme`] module implements the paper's six routing schemes
//! behind one [`scheme::RoutingScheme`] trait:
//!
//! | Scheme | Paper role |
//! |---|---|
//! | [`scheme::StaticSinglePath`] | the traditional baseline |
//! | [`scheme::DynamicSinglePath`] | single path, re-routed on updates |
//! | [`scheme::StaticTwoDisjoint`] | two node-disjoint paths, fixed |
//! | [`scheme::DynamicTwoDisjoint`] | two node-disjoint paths, re-routed |
//! | [`scheme::TargetedRedundancy`] | **the paper's contribution** |
//! | [`scheme::TimeConstrainedFlooding`] | the optimal (costly) benchmark |
//!
//! # Example
//!
//! ```
//! use dg_topology::presets;
//! use dg_core::{Flow, ServiceRequirement};
//! use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
//!
//! let g = presets::north_america_12();
//! let flow = Flow::new(
//!     g.node_by_name("NYC").unwrap(),
//!     g.node_by_name("SJC").unwrap(),
//! );
//! let req = ServiceRequirement::default(); // 65 ms one-way deadline
//! let scheme = build_scheme(
//!     SchemeKind::TargetedRedundancy, &g, flow, req, &SchemeParams::default(),
//! )?;
//! assert!(scheme.current().cost(&g) >= 2);
//! # Ok::<(), dg_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod detector;
mod dgraph;
mod error;
mod flow;
mod mgraph;
pub mod scheme;

pub use cache::{build_scheme_cached, CachedGraphKind, GraphCache, GraphCacheStats};
pub use detector::{ProblemDetector, ProblemStatus};
pub use dgraph::DisseminationGraph;
pub use error::CoreError;
pub use flow::{Flow, ServiceRequirement, SlaClass};
pub use mgraph::{receiver_digest, MulticastGraph, MulticastKind};
