//! The dissemination graph itself.

use crate::CoreError;
use dg_topology::{algo::dijkstra, EdgeId, Graph, Micros, NodeId, Path};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// An arbitrary overlay subgraph on which a flow's packets are
/// disseminated.
///
/// Semantics: the source sends each packet once on each of its
/// out-edges in the graph; every node receiving the packet for the
/// first time forwards it once on each of *its* out-edges in the graph
/// (duplicates are suppressed). Single paths, disjoint path pairs, and
/// flooding are all dissemination graphs — this unification is the
/// paper's framework contribution.
///
/// # Invariants
///
/// Construction normalizes the edge set: edges whose tail cannot be
/// reached from the source *within the graph* are pruned (they could
/// never carry a packet), remaining edges are sorted and deduplicated,
/// and the destination must be reachable. Two graphs compare equal iff
/// their normalized edge sets and endpoints match.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DisseminationGraph {
    source: NodeId,
    destination: NodeId,
    edges: Vec<EdgeId>,
}

impl DisseminationGraph {
    /// Builds a dissemination graph from an edge set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unreachable`] when the edge set does not
    /// connect `source` to `destination`, and topology errors for
    /// invalid ids.
    ///
    /// # Example
    ///
    /// ```
    /// use dg_core::DisseminationGraph;
    /// use dg_topology::{presets, algo::dijkstra};
    ///
    /// let g = presets::north_america_12();
    /// let s = g.node_by_name("NYC").unwrap();
    /// let t = g.node_by_name("SEA").unwrap();
    /// let path = dijkstra::shortest_path(&g, s, t)?;
    /// let dg = DisseminationGraph::new(&g, s, t, path.edges().to_vec())?;
    /// assert_eq!(dg.cost(&g) as usize, path.len());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn new(
        graph: &Graph,
        source: NodeId,
        destination: NodeId,
        edges: Vec<EdgeId>,
    ) -> Result<Self, CoreError> {
        graph.check_node(source)?;
        graph.check_node(destination)?;
        for &e in &edges {
            graph.check_edge(e)?;
        }
        let member: HashSet<EdgeId> = edges.iter().copied().collect();
        // Reachability from the source within the subgraph.
        let mut reachable = HashSet::from([source]);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &e in graph.out_edges(u) {
                if member.contains(&e) {
                    let v = graph.edge(e).dst;
                    if reachable.insert(v) {
                        queue.push_back(v);
                    }
                }
            }
        }
        if !reachable.contains(&destination) {
            return Err(CoreError::Unreachable { source, destination });
        }
        let mut kept: Vec<EdgeId> =
            member.into_iter().filter(|&e| reachable.contains(&graph.edge(e).src)).collect();
        kept.sort();
        Ok(DisseminationGraph { source, destination, edges: kept })
    }

    /// Builds the single-path dissemination graph for `path`.
    pub fn from_path(graph: &Graph, path: &Path) -> Self {
        DisseminationGraph::new(graph, path.source(), path.destination(), path.edges().to_vec())
            .expect("a valid path always forms a dissemination graph")
    }

    /// Builds the union graph of several paths sharing endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MismatchedEndpoints`] when paths disagree on
    /// source or destination, or [`CoreError::Unreachable`] for an empty
    /// path list.
    pub fn from_paths(graph: &Graph, paths: &[Path]) -> Result<Self, CoreError> {
        let first = paths.first().ok_or(CoreError::MismatchedEndpoints)?;
        let (s, t) = (first.source(), first.destination());
        if paths.iter().any(|p| p.source() != s || p.destination() != t) {
            return Err(CoreError::MismatchedEndpoints);
        }
        let edges: Vec<EdgeId> = paths.iter().flat_map(|p| p.edges().iter().copied()).collect();
        DisseminationGraph::new(graph, s, t, edges)
    }

    /// The flow source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The flow destination.
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// The normalized edge set, sorted by id.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// A dissemination graph always connects two distinct reachable
    /// endpoints, so it always has edges; always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `edge` is part of the graph.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.edges.binary_search(&edge).is_ok()
    }

    /// Edges on which `node` forwards packets of this flow.
    pub fn forwarding_edges<'a>(
        &'a self,
        graph: &'a Graph,
        node: NodeId,
    ) -> impl Iterator<Item = EdgeId> + 'a {
        self.edges.iter().copied().filter(move |&e| graph.edge(e).src == node)
    }

    /// The paper's cost metric: packets sent per message = sum of edge
    /// costs (1 per edge in the evaluation topology).
    pub fn cost(&self, graph: &Graph) -> u64 {
        graph.edge_set_cost(self.edges.iter().copied())
    }

    /// Latency of the fastest route through the graph at baseline
    /// conditions.
    pub fn best_latency(&self, graph: &Graph) -> Micros {
        dijkstra::shortest_path_filtered(graph, self.source, self.destination, |e| self.contains(e))
            .map(|p| p.latency(graph))
            .unwrap_or(Micros::MAX)
    }

    /// Union with another graph over the same flow.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MismatchedEndpoints`] when endpoints differ.
    pub fn union(&self, graph: &Graph, other: &DisseminationGraph) -> Result<Self, CoreError> {
        if self.source != other.source || self.destination != other.destination {
            return Err(CoreError::MismatchedEndpoints);
        }
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        DisseminationGraph::new(graph, self.source, self.destination, edges)
    }

    /// True if every edge of `other` is in `self`.
    pub fn is_superset_of(&self, other: &DisseminationGraph) -> bool {
        other.edges.iter().all(|&e| self.contains(e))
    }

    /// Serializes membership as a bitmask over dense edge ids
    /// (`ceil(edge_count / 8)` bytes, LSB-first). This is the wire
    /// format the overlay packet header carries.
    pub fn to_bitmask(&self, edge_count: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; edge_count.div_ceil(8)];
        for &e in &self.edges {
            bytes[e.index() / 8] |= 1 << (e.index() % 8);
        }
        bytes
    }

    /// Reconstructs a graph from a bitmask produced by
    /// [`DisseminationGraph::to_bitmask`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BitmaskTooShort`] when `bytes` cannot cover
    /// the topology's edges, plus the usual construction errors.
    pub fn from_bitmask(
        graph: &Graph,
        source: NodeId,
        destination: NodeId,
        bytes: &[u8],
    ) -> Result<Self, CoreError> {
        let need = graph.edge_count().div_ceil(8);
        if bytes.len() < need {
            return Err(CoreError::BitmaskTooShort { got: bytes.len(), need });
        }
        let edges: Vec<EdgeId> = (0..graph.edge_count())
            .filter(|&i| bytes[i / 8] & (1 << (i % 8)) != 0)
            .map(|i| EdgeId::new(i as u32))
            .collect();
        DisseminationGraph::new(graph, source, destination, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::algo::disjoint::{disjoint_pair, Disjointness};
    use dg_topology::presets;

    fn setup() -> (Graph, NodeId, NodeId) {
        let g = presets::north_america_12();
        let s = g.node_by_name("NYC").unwrap();
        let t = g.node_by_name("SJC").unwrap();
        (g, s, t)
    }

    #[test]
    fn from_path_has_path_cost() {
        let (g, s, t) = setup();
        let p = dijkstra::shortest_path(&g, s, t).unwrap();
        let dg = DisseminationGraph::from_path(&g, &p);
        assert_eq!(dg.cost(&g) as usize, p.len());
        assert_eq!(dg.best_latency(&g), p.latency(&g));
        assert_eq!(dg.source(), s);
        assert_eq!(dg.destination(), t);
        assert!(!dg.is_empty());
    }

    #[test]
    fn union_of_disjoint_pair() {
        let (g, s, t) = setup();
        let (p1, p2) = disjoint_pair(&g, s, t, Disjointness::Node).unwrap();
        let dg = DisseminationGraph::from_paths(&g, &[p1.clone(), p2.clone()]).unwrap();
        assert_eq!(dg.len(), p1.len() + p2.len());
        assert!(dg.is_superset_of(&DisseminationGraph::from_path(&g, &p1)));
        assert_eq!(dg.best_latency(&g), p1.latency(&g).min(p2.latency(&g)));
    }

    #[test]
    fn unreachable_edge_set_is_rejected() {
        let (g, s, t) = setup();
        // A single edge near the destination does not connect s to t.
        let e = g.in_edges(t)[0];
        let err = DisseminationGraph::new(&g, s, t, vec![e]).unwrap_err();
        assert_eq!(err, CoreError::Unreachable { source: s, destination: t });
    }

    #[test]
    fn unreachable_tails_are_pruned() {
        let (g, s, t) = setup();
        let p = dijkstra::shortest_path(&g, s, t).unwrap();
        let mut edges = p.edges().to_vec();
        // An edge leaving MIA is unreachable within this subgraph (no
        // edge of the shortest path enters MIA).
        let mia = g.node_by_name("MIA").unwrap();
        assert!(!p.nodes(&g).contains(&mia));
        edges.push(g.out_edges(mia)[0]);
        let dg = DisseminationGraph::new(&g, s, t, edges).unwrap();
        assert_eq!(dg.len(), p.len());
        // But a reachable side-branch is kept.
        let mut edges2 = p.edges().to_vec();
        let branch = g.out_edges(s).iter().copied().find(|e| !p.edges().contains(e)).unwrap();
        edges2.push(branch);
        let dg2 = DisseminationGraph::new(&g, s, t, edges2).unwrap();
        assert_eq!(dg2.len(), p.len() + 1);
        assert!(dg2.contains(branch));
    }

    #[test]
    fn duplicates_are_removed() {
        let (g, s, t) = setup();
        let p = dijkstra::shortest_path(&g, s, t).unwrap();
        let mut edges = p.edges().to_vec();
        edges.extend_from_slice(p.edges());
        let dg = DisseminationGraph::new(&g, s, t, edges).unwrap();
        assert_eq!(dg.len(), p.len());
    }

    #[test]
    fn mismatched_paths_are_rejected() {
        let (g, s, t) = setup();
        let p1 = dijkstra::shortest_path(&g, s, t).unwrap();
        let other = g.node_by_name("SEA").unwrap();
        let p2 = dijkstra::shortest_path(&g, s, other).unwrap();
        assert_eq!(
            DisseminationGraph::from_paths(&g, &[p1, p2]),
            Err(CoreError::MismatchedEndpoints)
        );
        assert_eq!(DisseminationGraph::from_paths(&g, &[]), Err(CoreError::MismatchedEndpoints));
    }

    #[test]
    fn forwarding_edges_are_per_node() {
        let (g, s, t) = setup();
        let (p1, p2) = disjoint_pair(&g, s, t, Disjointness::Node).unwrap();
        let dg = DisseminationGraph::from_paths(&g, &[p1, p2]).unwrap();
        let from_source: Vec<EdgeId> = dg.forwarding_edges(&g, s).collect();
        assert_eq!(from_source.len(), 2);
        for e in from_source {
            assert_eq!(g.edge(e).src, s);
        }
        assert_eq!(dg.forwarding_edges(&g, t).count(), 0);
    }

    #[test]
    fn bitmask_round_trip() {
        let (g, s, t) = setup();
        let (p1, p2) = disjoint_pair(&g, s, t, Disjointness::Node).unwrap();
        let dg = DisseminationGraph::from_paths(&g, &[p1, p2]).unwrap();
        let mask = dg.to_bitmask(g.edge_count());
        assert_eq!(mask.len(), g.edge_count().div_ceil(8));
        let back = DisseminationGraph::from_bitmask(&g, s, t, &mask).unwrap();
        assert_eq!(dg, back);
    }

    #[test]
    fn short_bitmask_is_rejected() {
        let (g, s, t) = setup();
        assert_eq!(
            DisseminationGraph::from_bitmask(&g, s, t, &[0xff]),
            Err(CoreError::BitmaskTooShort { got: 1, need: g.edge_count().div_ceil(8) })
        );
    }

    #[test]
    fn union_requires_same_flow() {
        let (g, s, t) = setup();
        let p1 = dijkstra::shortest_path(&g, s, t).unwrap();
        let dg1 = DisseminationGraph::from_path(&g, &p1);
        let sea = g.node_by_name("SEA").unwrap();
        let p2 = dijkstra::shortest_path(&g, s, sea).unwrap();
        let dg2 = DisseminationGraph::from_path(&g, &p2);
        assert_eq!(dg1.union(&g, &dg2), Err(CoreError::MismatchedEndpoints));
        let dg3 = dg1.union(&g, &dg1).unwrap();
        assert_eq!(dg3, dg1);
    }

    #[test]
    fn serde_round_trip() {
        let (g, s, t) = setup();
        let p = dijkstra::shortest_path(&g, s, t).unwrap();
        let dg = DisseminationGraph::from_path(&g, &p);
        let json = serde_json::to_string(&dg).unwrap();
        assert_eq!(serde_json::from_str::<DisseminationGraph>(&json).unwrap(), dg);
    }
}
