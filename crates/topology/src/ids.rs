//! Typed identifiers for overlay graph elements.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an overlay node (site).
///
/// Node ids are dense indices assigned by [`crate::GraphBuilder`] in
/// insertion order, so they can be used directly to index per-node
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed overlay edge (link).
///
/// Edge ids are dense indices assigned by [`crate::GraphBuilder`] in
/// insertion order; a bidirectional link is two directed edges with two
/// distinct ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    pub const fn new(index: u32) -> Self {
        EdgeId(index)
    }

    /// Returns the dense index of this edge.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(NodeId::new(7).index(), 7);
        assert_eq!(EdgeId::new(42).index(), 42);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let set: HashSet<NodeId> =
            [NodeId::new(1), NodeId::new(2), NodeId::new(1)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(EdgeId::new(1) < EdgeId::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(9).to_string(), "e9");
    }
}
