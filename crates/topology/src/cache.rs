//! Keyed precomputation cache with per-entry edge-dependency tracking.
//!
//! Routing at 50–500 nodes cannot afford to recompute every
//! dissemination graph from scratch on each link-state change. This
//! module provides the generic machinery for *incremental
//! invalidation*: each cached value records the set of edges its
//! computation depended on ([`EdgeSet`]), and a link-state change on
//! edge `e` evicts exactly the entries whose dependency set contains
//! `e` — everything else stays served from cache.
//!
//! Entries are additionally scoped to a **topology epoch**: advancing
//! the epoch (a membership or link change to the graph itself, as
//! opposed to a condition change on an existing link) flushes every
//! entry at once. Together the two give the keying the scale-out
//! design calls for: `(topology epoch, key) → value` with per-edge
//! incremental invalidation inside an epoch.
//!
//! The dissemination-graph-specific layer on top lives in
//! `dg-core::cache`; this module is deliberately value-agnostic.

use crate::EdgeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A compact set of [`EdgeId`]s (bitset over the dense edge index).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeSet {
    bits: Vec<u64>,
}

impl EdgeSet {
    /// An empty set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Inserts `edge`; returns whether it was newly added.
    pub fn insert(&mut self, edge: EdgeId) -> bool {
        let (word, bit) = (edge.index() / 64, edge.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] |= 1 << bit;
        !had
    }

    /// Removes `edge`; returns whether it was present.
    pub fn remove(&mut self, edge: EdgeId) -> bool {
        let (word, bit) = (edge.index() / 64, edge.index() % 64);
        if word >= self.bits.len() {
            return false;
        }
        let had = self.bits[word] & (1 << bit) != 0;
        self.bits[word] &= !(1 << bit);
        had
    }

    /// Whether `edge` is in the set.
    pub fn contains(&self, edge: EdgeId) -> bool {
        let (word, bit) = (edge.index() / 64, edge.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Whether any edge is in both sets.
    pub fn intersects(&self, other: &EdgeSet) -> bool {
        self.bits.iter().zip(&other.bits).any(|(a, b)| a & b != 0)
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates the member edges in index order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(word, &w)| {
            (0..64)
                .filter(move |bit| w & (1 << bit) != 0)
                .map(move |bit| EdgeId::new((word * 64 + bit) as u32))
        })
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        let mut set = EdgeSet::new();
        for e in iter {
            set.insert(e);
        }
        set
    }
}

/// Hit/miss/invalidation counters for one [`PrecomputeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that required a fresh computation.
    pub misses: u64,
    /// Entries evicted by per-edge invalidation.
    pub invalidated: u64,
    /// Entries flushed by an epoch advance.
    pub epoch_flushed: u64,
}

struct Entry<V> {
    value: Arc<V>,
    deps: EdgeSet,
}

/// A keyed cache whose entries are evicted by the edges they depend
/// on (see the module docs). Values are interned behind [`Arc`], so a
/// hit shares the existing computation instead of cloning it.
pub struct PrecomputeCache<K, V> {
    epoch: u64,
    entries: HashMap<K, Entry<V>>,
    stats: CacheStats,
}

impl<K: Eq + Hash, V> Default for PrecomputeCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> PrecomputeCache<K, V> {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        PrecomputeCache { epoch: 0, entries: HashMap::new(), stats: CacheStats::default() }
    }

    /// The current topology epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the topology epoch, flushing every entry (the graph
    /// itself changed, so nothing computed against it survives).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
        self.stats.epoch_flushed += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&mut self, key: &K) -> Option<Arc<V>> {
        match self.entries.get(key) {
            Some(entry) => {
                self.stats.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks `key` up without touching the counters.
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        self.entries.get(key).map(|e| Arc::clone(&e.value))
    }

    /// Stores a freshly computed `value` whose computation depended on
    /// `deps`, returning the interned handle.
    pub fn insert(&mut self, key: K, value: V, deps: EdgeSet) -> Arc<V> {
        let value = Arc::new(value);
        self.entries.insert(key, Entry { value: Arc::clone(&value), deps });
        value
    }

    /// Evicts every entry whose dependency set contains `edge`;
    /// returns how many were evicted.
    pub fn invalidate_edge(&mut self, edge: EdgeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.deps.contains(edge));
        let evicted = before - self.entries.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// Evicts every entry whose dependency set intersects `edges`;
    /// returns how many were evicted.
    pub fn invalidate_edges(&mut self, edges: &EdgeSet) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.deps.intersects(edges));
        let evicted = before - self.entries.len();
        self.stats.invalidated += evicted as u64;
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (entries are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EdgeId {
        EdgeId::new(i)
    }

    #[test]
    fn edge_set_basics() {
        let mut s = EdgeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(e(3)));
        assert!(!s.insert(e(3)));
        assert!(s.insert(e(130)));
        assert!(s.contains(e(3)) && s.contains(e(130)) && !s.contains(e(4)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![e(3), e(130)]);
        assert!(s.remove(e(3)));
        assert!(!s.remove(e(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edge_set_intersection() {
        let a: EdgeSet = [e(1), e(70)].into_iter().collect();
        let b: EdgeSet = [e(70)].into_iter().collect();
        let c: EdgeSet = [e(2)].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!EdgeSet::new().intersects(&a));
    }

    #[test]
    fn cache_hit_miss_and_interning() {
        let mut c: PrecomputeCache<&str, u64> = PrecomputeCache::new();
        assert!(c.get(&"k").is_none());
        let v = c.insert("k", 7, EdgeSet::new());
        let again = c.get(&"k").unwrap();
        assert!(Arc::ptr_eq(&v, &again));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn invalidation_is_dependency_scoped() {
        let mut c: PrecomputeCache<u32, u32> = PrecomputeCache::new();
        c.insert(1, 10, [e(5)].into_iter().collect());
        c.insert(2, 20, [e(6)].into_iter().collect());
        c.insert(3, 30, EdgeSet::new());
        assert_eq!(c.invalidate_edge(e(5)), 1);
        assert!(c.peek(&1).is_none());
        assert!(c.peek(&2).is_some());
        assert!(c.peek(&3).is_some());
        assert_eq!(c.stats().invalidated, 1);
        let set: EdgeSet = [e(6), e(7)].into_iter().collect();
        assert_eq!(c.invalidate_edges(&set), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn epoch_advance_flushes_everything() {
        let mut c: PrecomputeCache<u32, u32> = PrecomputeCache::new();
        c.insert(1, 10, EdgeSet::new());
        c.insert(2, 20, [e(0)].into_iter().collect());
        assert_eq!(c.epoch(), 0);
        c.advance_epoch();
        assert_eq!(c.epoch(), 1);
        assert!(c.is_empty());
        assert_eq!(c.stats().epoch_flushed, 2);
    }
}
