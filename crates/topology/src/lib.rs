//! Overlay network topology model and routing algorithms.
//!
//! This crate provides the graph substrate for the dissemination-graph
//! transport service: a directed overlay [`Graph`] with per-edge latency
//! and cost, plus the routing algorithms the schemes in `dg-core` are
//! built from:
//!
//! - shortest paths ([`algo::dijkstra`], [`algo::bellman_ford`]),
//! - disjoint path pairs via Bhandari's algorithm ([`algo::disjoint`]),
//! - K-shortest loopless paths via Yen's algorithm ([`algo::yen`]),
//! - unit-capacity max-flow via Dinic's algorithm ([`algo::maxflow`]),
//! - time-constrained reachability for deadline flooding ([`algo::reach`]).
//!
//! # Example
//!
//! ```
//! use dg_topology::{presets, algo};
//!
//! let topo = presets::north_america_12();
//! let nyc = topo.node_by_name("NYC").unwrap();
//! let sjc = topo.node_by_name("SJC").unwrap();
//! let path = algo::dijkstra::shortest_path(&topo, nyc, sjc).unwrap();
//! assert!(path.latency(&topo).as_millis() < 65);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod cache;
mod error;
pub mod generate;
mod geo;
mod graph;
mod ids;
mod path;
pub mod presets;
mod units;

pub use error::TopologyError;
pub use geo::GeoPoint;
pub use graph::{EdgeInfo, Graph, GraphBuilder, NodeInfo};
pub use ids::{EdgeId, NodeId};
pub use path::Path;
pub use units::Micros;
