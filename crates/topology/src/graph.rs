//! The directed overlay graph.

use crate::{EdgeId, GeoPoint, Micros, NodeId, TopologyError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Metadata attached to an overlay node (site).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Short human-readable site name (e.g. `"NYC"`). Unique per graph.
    pub name: String,
    /// Optional geographic position, used by topology presets.
    pub position: Option<GeoPoint>,
}

/// Metadata attached to a directed overlay edge (link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Baseline one-way propagation latency of the link.
    pub latency: Micros,
    /// Cost of sending one packet over the link (paper: 1 per edge).
    pub cost: u32,
}

/// A directed overlay network graph.
///
/// Nodes and edges carry dense ids ([`NodeId`], [`EdgeId`]) assigned in
/// insertion order, so algorithms can use plain vectors for per-element
/// state. Graphs are immutable after construction via [`GraphBuilder`];
/// dynamic link conditions (loss, latency inflation) live outside the
/// graph, in `dg-trace` link state.
///
/// # Example
///
/// ```
/// use dg_topology::{GraphBuilder, Micros};
///
/// let mut b = GraphBuilder::new();
/// let a = b.add_node("A");
/// let c = b.add_node("C");
/// b.add_link(a, c, Micros::from_millis(10), 1)?;
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 2); // one link = two directed edges
/// # Ok::<(), dg_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<NodeInfo>,
    edges: Vec<EdgeInfo>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    /// For edge (u, v), the id of (v, u) if present.
    reverse: Vec<Option<EdgeId>>,
    name_index: HashMap<String, NodeId>,
}

impl Graph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the metadata of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this graph.
    pub fn node(&self, node: NodeId) -> &NodeInfo {
        &self.nodes[node.index()]
    }

    /// Returns the metadata of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range for this graph.
    pub fn edge(&self, edge: EdgeId) -> &EdgeInfo {
        &self.edges[edge.index()]
    }

    /// Looks up a node by its unique name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Iterates over all node ids in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all edge ids in dense order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Out-edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// In-edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// Neighbours reachable over one out-edge of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[node.index()].iter().map(|&e| self.edges[e.index()].dst)
    }

    /// The directed edge from `src` to `dst`, if one exists.
    pub fn edge_between(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges[src.index()].iter().copied().find(|&e| self.edges[e.index()].dst == dst)
    }

    /// The reverse of `edge` — the edge with swapped endpoints, if present.
    ///
    /// All preset topologies are built from bidirectional links, so every
    /// edge has a reverse there; hand-built graphs may be asymmetric.
    pub fn reverse_edge(&self, edge: EdgeId) -> Option<EdgeId> {
        self.reverse[edge.index()]
    }

    /// Validates that a node id belongs to this graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] when out of range.
    pub fn check_node(&self, node: NodeId) -> Result<(), TopologyError> {
        if node.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownNode(node))
        }
    }

    /// Validates that an edge id belongs to this graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownEdge`] when out of range.
    pub fn check_edge(&self, edge: EdgeId) -> Result<(), TopologyError> {
        if edge.index() < self.edges.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownEdge(edge))
        }
    }

    /// Total cost of a set of edges (the paper's dissemination-graph cost).
    pub fn edge_set_cost<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> u64 {
        edges.into_iter().map(|e| u64::from(self.edges[e.index()].cost)).sum()
    }

    /// Renders the graph in Graphviz DOT format (one line per link).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph overlay {\n");
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", i, n.name));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                e.src.index(),
                e.dst.index(),
                e.latency
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental builder for [`Graph`].
///
/// Supports both single directed edges ([`GraphBuilder::add_edge`]) and
/// bidirectional links ([`GraphBuilder::add_link`], the common case for
/// overlay topologies).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<NodeInfo>,
    edges: Vec<EdgeInfo>,
    name_index: HashMap<String, NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Adds a node with the given name and no position.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered; use
    /// [`GraphBuilder::try_add_node`] to handle duplicates gracefully.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.try_add_node(name, None).expect("duplicate node name")
    }

    /// Adds a node with a geographic position.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn add_node_at(&mut self, name: &str, position: GeoPoint) -> NodeId {
        self.try_add_node(name, Some(position)).expect("duplicate node name")
    }

    /// Adds a node, failing on duplicate names.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateNodeName`] if `name` is taken.
    pub fn try_add_node(
        &mut self,
        name: &str,
        position: Option<GeoPoint>,
    ) -> Result<NodeId, TopologyError> {
        if self.name_index.contains_key(name) {
            return Err(TopologyError::DuplicateNodeName(name.to_string()));
        }
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeInfo { name: name.to_string(), position });
        self.name_index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a single directed edge.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown endpoints, self loops, or a duplicate
    /// directed edge between the same endpoints.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        latency: Micros,
        cost: u32,
    ) -> Result<EdgeId, TopologyError> {
        if src.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(dst));
        }
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(TopologyError::DuplicateEdge(src, dst));
        }
        let id = EdgeId::new(self.edges.len() as u32);
        self.edges.push(EdgeInfo { src, dst, latency, cost });
        Ok(id)
    }

    /// Adds a bidirectional link as two directed edges with equal
    /// latency and cost, returning `(forward, backward)` edge ids.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`].
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: Micros,
        cost: u32,
    ) -> Result<(EdgeId, EdgeId), TopologyError> {
        let fwd = self.add_edge(a, b, latency, cost)?;
        let bwd = self.add_edge(b, a, latency, cost)?;
        Ok((fwd, bwd))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.nodes.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut endpoint_index: HashMap<(NodeId, NodeId), EdgeId> = HashMap::new();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId::new(i as u32);
            out_edges[e.src.index()].push(id);
            in_edges[e.dst.index()].push(id);
            endpoint_index.insert((e.src, e.dst), id);
        }
        let reverse =
            self.edges.iter().map(|e| endpoint_index.get(&(e.dst, e.src)).copied()).collect();
        Graph {
            nodes: self.nodes,
            edges: self.edges,
            out_edges,
            in_edges,
            reverse,
            name_index: self.name_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        let d = b.add_node("C");
        b.add_link(a, c, Micros::from_millis(1), 1).unwrap();
        b.add_link(c, d, Micros::from_millis(2), 1).unwrap();
        b.add_link(a, d, Micros::from_millis(5), 1).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_lookup() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.node_by_name("B"), Some(NodeId::new(1)));
        assert_eq!(g.node_by_name("missing"), None);
        assert_eq!(g.node(NodeId::new(0)).name, "A");
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = triangle();
        for e in g.edges() {
            let info = g.edge(e);
            assert!(g.out_edges(info.src).contains(&e));
            assert!(g.in_edges(info.dst).contains(&e));
        }
        let a = g.node_by_name("A").unwrap();
        let mut nbrs: Vec<String> = g.neighbors(a).map(|n| g.node(n).name.clone()).collect();
        nbrs.sort();
        assert_eq!(nbrs, ["B", "C"]);
    }

    #[test]
    fn reverse_edges_pair_up() {
        let g = triangle();
        for e in g.edges() {
            let r = g.reverse_edge(e).expect("links are bidirectional");
            assert_eq!(g.edge(r).src, g.edge(e).dst);
            assert_eq!(g.edge(r).dst, g.edge(e).src);
            assert_eq!(g.reverse_edge(r), Some(e));
        }
    }

    #[test]
    fn edge_between_finds_directed_edge() {
        let g = triangle();
        let a = g.node_by_name("A").unwrap();
        let b = g.node_by_name("B").unwrap();
        let e = g.edge_between(a, b).unwrap();
        assert_eq!(g.edge(e).latency, Micros::from_millis(1));
        let c = g.node_by_name("C").unwrap();
        // B and C are connected, A->A is not a thing.
        assert!(g.edge_between(b, c).is_some());
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        assert_eq!(b.add_edge(a, a, Micros::ZERO, 1), Err(TopologyError::SelfLoop(a)));
        assert_eq!(
            b.add_edge(a, NodeId::new(99), Micros::ZERO, 1),
            Err(TopologyError::UnknownNode(NodeId::new(99)))
        );
        b.add_edge(a, c, Micros::ZERO, 1).unwrap();
        assert_eq!(b.add_edge(a, c, Micros::ZERO, 1), Err(TopologyError::DuplicateEdge(a, c)));
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let mut b = GraphBuilder::new();
        b.add_node("A");
        assert_eq!(b.try_add_node("A", None), Err(TopologyError::DuplicateNodeName("A".into())));
    }

    #[test]
    fn check_helpers_validate_ranges() {
        let g = triangle();
        assert!(g.check_node(NodeId::new(2)).is_ok());
        assert!(g.check_node(NodeId::new(3)).is_err());
        assert!(g.check_edge(EdgeId::new(5)).is_ok());
        assert!(g.check_edge(EdgeId::new(6)).is_err());
    }

    #[test]
    fn edge_set_cost_sums_costs() {
        let g = triangle();
        let all: Vec<EdgeId> = g.edges().collect();
        assert_eq!(g.edge_set_cost(all), 6);
        assert_eq!(g.edge_set_cost([EdgeId::new(0), EdgeId::new(2)]), 2);
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let g = triangle();
        let dot = g.to_dot();
        for n in ["A", "B", "C"] {
            assert!(dot.contains(n));
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn serde_round_trip() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn asymmetric_edge_has_no_reverse() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        let e = b.add_edge(a, c, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        assert_eq!(g.reverse_edge(e), None);
    }
}
