//! Geographic helpers used to derive realistic link latencies.

use crate::Micros;
use serde::{Deserialize, Serialize};

/// Mean radius of the Earth in kilometres.
const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Speed of light in fibre, in kilometres per second (~0.66 c).
const FIBRE_KM_PER_SEC: f64 = 200_000.0;

/// Multiplier accounting for fibre routes being longer than great circles.
const ROUTE_INFLATION: f64 = 1.3;

/// Fixed per-hop overhead (forwarding, serialization) in microseconds.
const HOP_OVERHEAD_US: u64 = 200;

/// A point on the Earth's surface, in decimal degrees.
///
/// # Example
///
/// ```
/// use dg_topology::GeoPoint;
///
/// let nyc = GeoPoint::new(40.71, -74.01);
/// let sjc = GeoPoint::new(37.34, -121.89);
/// let km = nyc.distance_km(&sjc);
/// assert!(km > 4000.0 && km < 4200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in decimal degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// One-way propagation latency to `other` over a typical fibre route.
    ///
    /// Combines the great-circle distance, a route-inflation factor for
    /// real fibre paths, and a fixed per-hop forwarding overhead. This is
    /// what the synthetic topology presets use for base link latencies.
    pub fn propagation_latency(&self, other: &GeoPoint) -> Micros {
        let km = self.distance_km(other) * ROUTE_INFLATION;
        let us = km / FIBRE_KM_PER_SEC * 1_000_000.0;
        Micros::from_micros(us.round() as u64 + HOP_OVERHEAD_US)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(40.0, -74.0);
        assert!(p.distance_km(&p) < 1e-9);
        assert_eq!(p.propagation_latency(&p).as_micros(), HOP_OVERHEAD_US);
    }

    #[test]
    fn known_city_distance() {
        // NYC <-> LAX is ~3940 km great circle.
        let nyc = GeoPoint::new(40.71, -74.01);
        let lax = GeoPoint::new(34.05, -118.24);
        let km = nyc.distance_km(&lax);
        assert!((3_900.0..4_000.0).contains(&km), "got {km}");
    }

    #[test]
    fn transcontinental_latency_is_tens_of_ms() {
        let nyc = GeoPoint::new(40.71, -74.01);
        let sjc = GeoPoint::new(37.34, -121.89);
        let lat = nyc.propagation_latency(&sjc);
        assert!(lat.as_millis() >= 20 && lat.as_millis() <= 35, "got {lat}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(47.61, -122.33);
        let b = GeoPoint::new(25.76, -80.19);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }
}
