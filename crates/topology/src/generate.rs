//! Parameterised overlay topology generation.
//!
//! The paper evaluates dissemination graphs on a fixed 12-site overlay;
//! scaling the algorithms to 50–500 nodes needs families of synthetic
//! topologies whose shape is controlled and reproducible. This module
//! generates two such families, both placed on a kilometre plane and
//! mapped onto [`GeoPoint`]s so every distance-derived quantity can be
//! recomputed from the finished graph:
//!
//! - **ring of cliques** ([`TopologyModel::RingOfCliques`]): dense
//!   metro-style sites (full meshes) strung around a backbone ring,
//!   with two node-disjoint links between adjacent cliques so the
//!   backbone survives any single link cut;
//! - **Waxman geo-random** ([`TopologyModel::Waxman`]): the classic
//!   random-graph model where the probability of a link decays
//!   exponentially with distance, plus deterministic repair passes
//!   that join stray components and raise every node to degree ≥ 2.
//!
//! Every generated graph is **seed-deterministic** (the same
//! [`GeneratorConfig`] always yields the same graph, bit for bit) and
//! the config itself is serde round-trippable so experiments can log
//! exactly what they ran on.
//!
//! Link latencies follow the fibre model of [`crate::GeoPoint`]: 5 µs
//! per great-circle kilometre, inflated by a per-link route factor
//! drawn uniformly from `[1, fiber_factor]`, plus a fixed per-hop
//! overhead. [`LatencyModel::bounds_for_km`] exposes the exact bounds,
//! which the generator property tests assert edge by edge.

use crate::algo::dijkstra;
use crate::algo::disjoint::{max_disjoint, Disjointness};
use crate::{GeoPoint, Graph, GraphBuilder, Micros, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fibre propagation delay per kilometre, in microseconds (~0.66 c).
pub const US_PER_KM: f64 = 5.0;

/// Kilometres per degree of latitude (and of longitude at the equator).
const KM_PER_DEGREE: f64 = 111.19;

/// How link latency is derived from inter-site distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Maximum route-inflation (fibre) factor: each link's fibre route
    /// is `distance × f` for an `f` drawn uniformly from
    /// `[1, fiber_factor]`. Must be ≥ 1.
    pub fiber_factor: f64,
    /// Fixed per-hop forwarding overhead, in microseconds.
    pub hop_overhead_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Matches the preset topologies' route inflation and overhead.
        LatencyModel { fiber_factor: 1.3, hop_overhead_us: 200 }
    }
}

impl LatencyModel {
    /// Latency of a link spanning `km` with route-inflation `factor`.
    fn latency(&self, km: f64, factor: f64) -> Micros {
        Micros::from_micros((km * US_PER_KM * factor).round() as u64 + self.hop_overhead_us)
    }

    /// Inclusive `[min, max]` latency bounds for a link spanning `km`:
    /// the fibre-factor envelope the generator guarantees (±1 µs of
    /// rounding slack on each side).
    pub fn bounds_for_km(&self, km: f64) -> (Micros, Micros) {
        let lo = (km * US_PER_KM).floor() as u64 + self.hop_overhead_us;
        let hi = (km * US_PER_KM * self.fiber_factor).ceil() as u64 + self.hop_overhead_us;
        (Micros::from_micros(lo), Micros::from_micros(hi))
    }
}

/// How link cost is derived from inter-site distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostModel {
    /// Every link costs the same (the paper's unit-cost accounting,
    /// where cost counts transmissions).
    Uniform(u32),
    /// Cost grows with distance: `base + per_1000_km × ⌈km / 1000⌉` —
    /// a crude stand-in for leased-capacity pricing.
    DistanceBanded {
        /// Cost of even the shortest link.
        base: u32,
        /// Extra cost per started 1000 km band.
        per_1000_km: u32,
    },
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::Uniform(1)
    }
}

impl CostModel {
    fn cost(&self, km: f64) -> u32 {
        match *self {
            CostModel::Uniform(c) => c,
            CostModel::DistanceBanded { base, per_1000_km } => {
                base + per_1000_km * (km / 1000.0).ceil().max(0.0) as u32
            }
        }
    }
}

/// The random-graph family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyModel {
    /// Dense metro cliques around a backbone ring. Adjacent cliques are
    /// joined by two node-disjoint links (one when cliques have a
    /// single member), so the backbone is 2-edge-connected and every
    /// pair of sites has two disjoint routes.
    RingOfCliques {
        /// Number of cliques on the ring (≥ 3).
        cliques: usize,
        /// Total node count, spread as evenly as possible over the
        /// cliques (≥ `cliques`).
        nodes: usize,
        /// Ring-circumference distance between adjacent clique
        /// centres, in kilometres (> 0).
        spacing_km: f64,
        /// Members are scattered within this radius of their clique
        /// centre, in kilometres (≥ 0).
        clique_radius_km: f64,
    },
    /// Waxman's random geometric model: sites uniform on a square,
    /// each pair linked with probability `alpha × exp(−d / beta_km)`.
    /// Two deterministic repair passes then join any disconnected
    /// components (closest pair first) and link any degree-< 2 node to
    /// its nearest non-neighbours, so the result is always connected
    /// with minimum degree 2.
    Waxman {
        /// Node count (≥ 3).
        nodes: usize,
        /// Side of the placement square, in kilometres (> 0).
        width_km: f64,
        /// Link probability at distance zero (0 < alpha ≤ 1).
        alpha: f64,
        /// Characteristic decay length of the link probability, in
        /// kilometres (> 0).
        beta_km: f64,
    },
}

/// Everything needed to regenerate a topology, serde round-trippable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Seed for every random choice the generator makes.
    pub seed: u64,
    /// The graph family and its shape parameters.
    pub model: TopologyModel,
    /// Distance → latency mapping.
    pub latency: LatencyModel,
    /// Distance → cost mapping.
    pub cost: CostModel,
}

impl GeneratorConfig {
    /// A ring-of-cliques config for roughly `nodes` sites with default
    /// metro shape: cliques of ~5 on a 500 km-spaced ring.
    pub fn ring_of_cliques(nodes: usize, seed: u64) -> Self {
        let cliques = (nodes / 5).max(3);
        GeneratorConfig {
            seed,
            model: TopologyModel::RingOfCliques {
                cliques,
                nodes: nodes.max(cliques),
                spacing_km: 500.0,
                clique_radius_km: 40.0,
            },
            latency: LatencyModel::default(),
            cost: CostModel::default(),
        }
    }

    /// A Waxman config for `nodes` sites at constant site density (the
    /// square grows with √nodes), parameterised so mean degree stays
    /// near 8 across 50–500 nodes.
    pub fn waxman(nodes: usize, seed: u64) -> Self {
        GeneratorConfig {
            seed,
            model: TopologyModel::Waxman {
                nodes: nodes.max(3),
                width_km: 85.0 * (nodes.max(3) as f64).sqrt(),
                alpha: 0.9,
                beta_km: 100.0,
            },
            latency: LatencyModel::default(),
            cost: CostModel::default(),
        }
    }

    /// Generates the topology this config describes.
    ///
    /// Deterministic: equal configs yield bit-identical graphs.
    ///
    /// # Panics
    ///
    /// Panics when a shape parameter is out of range (see
    /// [`TopologyModel`]).
    pub fn generate(&self) -> Graph {
        assert!(self.latency.fiber_factor >= 1.0, "fiber_factor must be >= 1");
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.model {
            TopologyModel::RingOfCliques { cliques, nodes, spacing_km, clique_radius_km } => {
                assert!(cliques >= 3, "a ring needs at least 3 cliques");
                assert!(nodes >= cliques, "need at least one node per clique");
                assert!(spacing_km > 0.0, "spacing_km must be positive");
                assert!(clique_radius_km >= 0.0, "clique_radius_km must be non-negative");
                generate_ring_of_cliques(
                    self,
                    &mut rng,
                    cliques,
                    nodes,
                    spacing_km,
                    clique_radius_km,
                )
            }
            TopologyModel::Waxman { nodes, width_km, alpha, beta_km } => {
                assert!(nodes >= 3, "waxman needs at least 3 nodes");
                assert!(width_km > 0.0, "width_km must be positive");
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
                assert!(beta_km > 0.0, "beta_km must be positive");
                generate_waxman(self, &mut rng, nodes, width_km, alpha, beta_km)
            }
        }
    }
}

/// Maps a kilometre-plane point (centred on the origin) to a pseudo
/// geo position near (0°, 0°), where one degree ≈ 111.19 km in both
/// axes, so [`GeoPoint::distance_km`] recovers plane distances to well
/// under the fibre model's rounding error.
fn plane_to_geo(x_km: f64, y_km: f64) -> GeoPoint {
    GeoPoint::new(y_km / KM_PER_DEGREE, x_km / KM_PER_DEGREE)
}

/// Shared link-insertion path: distance from the *stored* geo
/// positions (so every derived quantity is recomputable from the
/// graph), latency from the fibre model with a per-link inflation
/// draw, cost from the cost model.
fn add_generated_link(
    b: &mut GraphBuilder,
    config: &GeneratorConfig,
    rng: &mut StdRng,
    positions: &[GeoPoint],
    i: usize,
    j: usize,
) {
    let km = positions[i].distance_km(&positions[j]);
    let factor = rng.gen_range(1.0..=config.latency.fiber_factor);
    let latency = config.latency.latency(km, factor);
    let cost = config.cost.cost(km);
    b.add_link(NodeId::new(i as u32), NodeId::new(j as u32), latency, cost)
        .expect("generated links are valid");
}

fn generate_ring_of_cliques(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    cliques: usize,
    nodes: usize,
    spacing_km: f64,
    clique_radius_km: f64,
) -> Graph {
    // Clique centres sit on a circle whose circumference spaces them
    // `spacing_km` apart.
    let ring_radius = spacing_km * cliques as f64 / (2.0 * std::f64::consts::PI);
    // Spread `nodes` members as evenly as possible: the first
    // `nodes % cliques` cliques get one extra.
    let base = nodes / cliques;
    let extra = nodes % cliques;
    let mut members: Vec<Vec<usize>> = Vec::with_capacity(cliques);
    let mut b = GraphBuilder::new();
    let mut positions: Vec<GeoPoint> = Vec::with_capacity(nodes);
    let mut next = 0usize;
    for c in 0..cliques {
        let size = base + usize::from(c < extra);
        let angle = 2.0 * std::f64::consts::PI * c as f64 / cliques as f64;
        let (cx, cy) = (ring_radius * angle.cos(), ring_radius * angle.sin());
        let mut ids = Vec::with_capacity(size);
        for _ in 0..size {
            // Uniform draw in the clique disc (polar with √u radius).
            let r = clique_radius_km * rng.gen_range(0.0f64..1.0).sqrt();
            let theta = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let p = plane_to_geo(cx + r * theta.cos(), cy + r * theta.sin());
            b.add_node_at(&format!("C{c}N{next}"), p);
            positions.push(p);
            ids.push(next);
            next += 1;
        }
        members.push(ids);
    }
    // Intra-clique full mesh.
    for ids in &members {
        for (a, &i) in ids.iter().enumerate() {
            for &j in &ids[a + 1..] {
                add_generated_link(&mut b, config, rng, &positions, i, j);
            }
        }
    }
    // Two node-disjoint links between adjacent cliques (one when a
    // clique has a single member), so the backbone ring survives any
    // single link or member failure.
    for c in 0..cliques {
        let left = &members[c];
        let right = &members[(c + 1) % cliques];
        let a1 = left[rng.gen_range(0..left.len())];
        let b1 = right[rng.gen_range(0..right.len())];
        add_generated_link(&mut b, config, rng, &positions, a1, b1);
        if left.len() > 1 && right.len() > 1 {
            let a2 = pick_other(rng, left, a1);
            let b2 = pick_other(rng, right, b1);
            add_generated_link(&mut b, config, rng, &positions, a2, b2);
        }
    }
    b.build()
}

/// Uniform member of `ids` other than `not` (caller guarantees one
/// exists).
fn pick_other(rng: &mut StdRng, ids: &[usize], not: usize) -> usize {
    loop {
        let x = ids[rng.gen_range(0..ids.len())];
        if x != not {
            return x;
        }
    }
}

fn generate_waxman(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    nodes: usize,
    width_km: f64,
    alpha: f64,
    beta_km: f64,
) -> Graph {
    let mut b = GraphBuilder::new();
    let half = width_km / 2.0;
    let positions: Vec<GeoPoint> = (0..nodes)
        .map(|i| {
            let p = plane_to_geo(rng.gen_range(-half..half), rng.gen_range(-half..half));
            b.add_node_at(&format!("W{i}"), p);
            p
        })
        .collect();
    let mut linked = vec![false; nodes * nodes];
    let mut degree = vec![0usize; nodes];
    let link = |b: &mut GraphBuilder,
                rng: &mut StdRng,
                linked: &mut Vec<bool>,
                degree: &mut Vec<usize>,
                i: usize,
                j: usize| {
        add_generated_link(b, config, rng, &positions, i, j);
        linked[i * nodes + j] = true;
        linked[j * nodes + i] = true;
        degree[i] += 1;
        degree[j] += 1;
    };
    // Waxman draw per unordered pair.
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            let d = positions[i].distance_km(&positions[j]);
            let p = alpha * (-d / beta_km).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                link(&mut b, rng, &mut linked, &mut degree, i, j);
            }
        }
    }
    // Repair pass 1: join components, globally closest pair first, so
    // the graph is always connected regardless of seed.
    let mut comp = UnionFind::new(nodes);
    for i in 0..nodes {
        for j in (i + 1)..nodes {
            if linked[i * nodes + j] {
                comp.union(i, j);
            }
        }
    }
    while comp.components() > 1 {
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..nodes {
            for j in (i + 1)..nodes {
                if comp.find(i) != comp.find(j) {
                    let d = positions[i].distance_km(&positions[j]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
        }
        let (_, i, j) = best.expect("multiple components imply a cross pair");
        link(&mut b, rng, &mut linked, &mut degree, i, j);
        comp.union(i, j);
    }
    // Repair pass 2: raise every node to degree ≥ 2 (nearest
    // non-neighbour first), so disjoint-pair routing has a chance
    // everywhere.
    for i in 0..nodes {
        while degree[i] < 2 {
            let mut best: Option<(f64, usize)> = None;
            for j in 0..nodes {
                if j != i && !linked[i * nodes + j] {
                    let d = positions[i].distance_km(&positions[j]);
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, j));
                    }
                }
            }
            let Some((_, j)) = best else { break };
            link(&mut b, rng, &mut linked, &mut degree, i, j);
        }
    }
    b.build()
}

struct UnionFind {
    parent: Vec<usize>,
    components: usize,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), components: n }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
            self.components -= 1;
        }
    }

    fn components(&self) -> usize {
        self.components
    }
}

/// Picks `count` long-haul flows with two node-disjoint routes — the
/// generated-topology analogue of the presets' transcontinental flows.
///
/// Samples candidate ordered pairs deterministically from `seed`,
/// keeps those with `max_disjoint ≥ 2`, and returns the `count`
/// highest-shortest-path-latency ones (ties broken by node ids).
/// Returns fewer than `count` flows only when the topology genuinely
/// lacks enough disjoint-routable pairs among the sampled candidates.
pub fn representative_flows(graph: &Graph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let n = graph.node_count();
    if n < 2 || count == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut scored: Vec<(Micros, NodeId, NodeId)> = Vec::new();
    let attempts = (count * 20).max(64);
    for _ in 0..attempts {
        let s = NodeId::new(rng.gen_range(0..n) as u32);
        let t = NodeId::new(rng.gen_range(0..n) as u32);
        if s == t || !seen.insert((s, t)) {
            continue;
        }
        let Ok(path) = dijkstra::shortest_path(graph, s, t) else { continue };
        if max_disjoint(graph, s, t, Disjointness::Node) >= 2 {
            scored.push((path.latency(graph), s, t));
        }
    }
    scored.sort_by(|a, b| (b.0, a.1, a.2).cmp(&(a.0, b.1, b.2)));
    scored.truncate(count);
    scored.into_iter().map(|(_, s, t)| (s, t)).collect()
}

/// A one-way deadline that makes every listed flow feasible with
/// `slack` headroom over its shortest path (the presets' 65 ms is
/// roughly 2× their worst shortest path), rounded up to a millisecond.
///
/// # Panics
///
/// Panics when `flows` is empty or a flow is unroutable.
pub fn feasible_deadline(graph: &Graph, flows: &[(NodeId, NodeId)], slack: f64) -> Micros {
    assert!(!flows.is_empty(), "need at least one flow to size a deadline");
    let worst = flows
        .iter()
        .map(|&(s, t)| {
            dijkstra::shortest_path(graph, s, t)
                .expect("deadline flows are routable")
                .latency(graph)
        })
        .max()
        .expect("non-empty flows");
    let us = (worst.as_micros() as f64 * slack).ceil() as u64;
    Micros::from_millis(us.div_ceil(1000))
}

/// A topology selector shared by the experiment binaries: the two
/// paper presets plus the generated families, so every benchmark can
/// run `--topo {preset|ring|waxman} --nodes N` against one code path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopoSpec {
    /// The paper's 12-site North-America preset.
    NorthAmerica,
    /// The 16-site global preset.
    Global,
    /// Generated ring of cliques (see [`GeneratorConfig::ring_of_cliques`]).
    RingOfCliques {
        /// Total node count.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Generated Waxman graph (see [`GeneratorConfig::waxman`]).
    Waxman {
        /// Total node count.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl TopoSpec {
    /// Parses a CLI topology name. Accepts the preset names `us` /
    /// `preset` / `na` and `global`, and the generated families
    /// `ring` / `ring-of-cliques` and `waxman` / `geo` (which use
    /// `nodes` and `seed`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted names otherwise.
    pub fn parse(name: &str, nodes: usize, seed: u64) -> Result<TopoSpec, String> {
        match name {
            "us" | "preset" | "na" | "north-america" => Ok(TopoSpec::NorthAmerica),
            "global" => Ok(TopoSpec::Global),
            "ring" | "ring-of-cliques" => Ok(TopoSpec::RingOfCliques { nodes, seed }),
            "waxman" | "geo" => Ok(TopoSpec::Waxman { nodes, seed }),
            other => {
                Err(format!("unknown topology '{other}' (expected us, global, ring, or waxman)"))
            }
        }
    }

    /// True for the two fixed paper presets.
    pub fn is_preset(&self) -> bool {
        matches!(self, TopoSpec::NorthAmerica | TopoSpec::Global)
    }

    /// A short label for result files and tables.
    pub fn label(&self) -> String {
        match self {
            TopoSpec::NorthAmerica => "us".into(),
            TopoSpec::Global => "global".into(),
            TopoSpec::RingOfCliques { nodes, .. } => format!("ring-{nodes}"),
            TopoSpec::Waxman { nodes, .. } => format!("waxman-{nodes}"),
        }
    }

    /// Builds the topology.
    pub fn build(&self) -> Graph {
        match *self {
            TopoSpec::NorthAmerica => crate::presets::north_america_12(),
            TopoSpec::Global => crate::presets::global_16(),
            TopoSpec::RingOfCliques { nodes, seed } => {
                GeneratorConfig::ring_of_cliques(nodes, seed).generate()
            }
            TopoSpec::Waxman { nodes, seed } => GeneratorConfig::waxman(nodes, seed).generate(),
        }
    }

    /// The flows an experiment on this topology should measure: the
    /// presets' published flow sets, or [`representative_flows`] for
    /// generated families.
    pub fn default_flows(&self, graph: &Graph, count: usize) -> Vec<(NodeId, NodeId)> {
        match *self {
            TopoSpec::NorthAmerica => {
                let mut f = crate::presets::transcontinental_flows(graph);
                f.truncate(count);
                f
            }
            TopoSpec::Global => {
                let mut f = crate::presets::intercontinental_flows(graph);
                f.truncate(count);
                f
            }
            TopoSpec::RingOfCliques { seed, .. } | TopoSpec::Waxman { seed, .. } => {
                representative_flows(graph, count, seed ^ 0x5f5f_5f5f)
            }
        }
    }

    /// The one-way deadline matching [`TopoSpec::default_flows`]: the
    /// presets' published deadlines (65 ms US, 110 ms global), or a
    /// 2× slack [`feasible_deadline`] for generated families.
    pub fn default_deadline(&self, graph: &Graph, flows: &[(NodeId, NodeId)]) -> Micros {
        match self {
            TopoSpec::NorthAmerica => Micros::from_millis(65),
            TopoSpec::Global => Micros::from_millis(110),
            _ => feasible_deadline(graph, flows, 2.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;

    #[test]
    fn ring_of_cliques_shape() {
        let cfg = GeneratorConfig::ring_of_cliques(50, 7);
        let g = cfg.generate();
        assert_eq!(g.node_count(), 50);
        // 10 cliques of 5: intra 10 × C(5,2) = 100 links, inter 10 × 2
        // = 20 links, each link two directed edges.
        assert_eq!(g.edge_count(), 2 * (100 + 20));
        for n in g.nodes() {
            assert!(g.out_edges(n).len() >= 2);
        }
    }

    #[test]
    fn waxman_connected_and_deterministic() {
        let cfg = GeneratorConfig::waxman(60, 11);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        for n in a.nodes() {
            assert!(a.out_edges(n).len() >= 2, "degree repair failed at {n:?}");
            let reached = dijkstra::distances_from(&a, n, |_| true)
                .iter()
                .filter(|d| !d.is_unreachable())
                .count();
            assert_eq!(reached, a.node_count(), "waxman graph disconnected from {n:?}");
        }
    }

    #[test]
    fn latencies_respect_fiber_factor_bounds() {
        let cfg = GeneratorConfig::waxman(50, 3);
        let g = cfg.generate();
        for e in g.edges() {
            let info = g.edge(e);
            let a = g.node(info.src).position.expect("generated nodes are placed");
            let b = g.node(info.dst).position.expect("generated nodes are placed");
            let (lo, hi) = cfg.latency.bounds_for_km(a.distance_km(&b));
            assert!(
                info.latency >= lo && info.latency <= hi,
                "edge {e:?}: {} outside [{lo}, {hi}]",
                info.latency
            );
        }
    }

    #[test]
    fn cost_models_apply() {
        let mut cfg = GeneratorConfig::ring_of_cliques(30, 1);
        cfg.cost = CostModel::DistanceBanded { base: 2, per_1000_km: 3 };
        let g = cfg.generate();
        // Intra-clique links (< 1000 km) cost base + one band.
        assert!(g.edges().any(|e| g.edge(e).cost == 5));
        let uniform = GeneratorConfig::ring_of_cliques(30, 1).generate();
        assert!(uniform.edges().all(|e| uniform.edge(e).cost == 1));
    }

    #[test]
    fn config_serde_round_trip() {
        for cfg in [GeneratorConfig::ring_of_cliques(80, 5), GeneratorConfig::waxman(120, 9)] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
            assert_eq!(cfg.generate(), back.generate());
        }
    }

    #[test]
    fn representative_flows_are_long_haul_and_disjoint_routable() {
        let g = GeneratorConfig::ring_of_cliques(50, 2).generate();
        let flows = representative_flows(&g, 8, 42);
        assert_eq!(flows.len(), 8);
        for &(s, t) in &flows {
            assert_ne!(s, t);
            assert!(max_disjoint(&g, s, t, Disjointness::Node) >= 2);
        }
        let deadline = feasible_deadline(&g, &flows, 2.0);
        for &(s, t) in &flows {
            let sp = dijkstra::shortest_path(&g, s, t).unwrap().latency(&g);
            assert!(sp <= deadline);
        }
    }

    #[test]
    fn topo_spec_parses_and_builds() {
        let spec = TopoSpec::parse("waxman", 50, 1).unwrap();
        assert_eq!(spec, TopoSpec::Waxman { nodes: 50, seed: 1 });
        assert!(!spec.is_preset());
        assert_eq!(spec.build().node_count(), 50);
        assert!(TopoSpec::parse("us", 0, 0).unwrap().is_preset());
        assert!(TopoSpec::parse("nope", 0, 0).is_err());
    }
}
