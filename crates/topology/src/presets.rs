//! Ready-made overlay topologies.
//!
//! [`north_america_12`] is the evaluation topology of this reproduction:
//! 12 overlay sites at real city locations with link latencies derived
//! from fibre-route distances, standing in for the commercial overlay
//! the paper measured (see DESIGN.md §2 for the substitution argument).

use crate::{GeoPoint, Graph, GraphBuilder, Micros, NodeId};

/// The 12 sites of the evaluation topology, as `(name, lat, lon)`.
pub const NORTH_AMERICA_SITES: [(&str, f64, f64); 12] = [
    ("NYC", 40.71, -74.01),
    ("JHU", 39.30, -76.61), // Baltimore
    ("WAS", 38.91, -77.04),
    ("BOS", 42.36, -71.06),
    ("CHI", 41.88, -87.63),
    ("ATL", 33.75, -84.39),
    ("MIA", 25.76, -80.19),
    ("DFW", 32.78, -96.80),
    ("DEN", 39.74, -104.99),
    ("LAX", 34.05, -118.24),
    ("SJC", 37.34, -121.89),
    ("SEA", 47.61, -122.33),
];

/// Bidirectional links of the evaluation topology, by site name.
///
/// Connectivity mirrors a commercial overlay's dense mesh: every access
/// site attaches to several others, so partial problems around a site
/// leave escape links for redundancy-based routing.
pub const NORTH_AMERICA_LINKS: [(&str, &str); 30] = [
    ("BOS", "NYC"),
    ("BOS", "CHI"),
    ("BOS", "JHU"),
    ("BOS", "WAS"),
    ("NYC", "JHU"),
    ("NYC", "WAS"),
    ("NYC", "CHI"),
    ("NYC", "ATL"),
    ("JHU", "WAS"),
    ("JHU", "CHI"),
    ("WAS", "ATL"),
    ("WAS", "CHI"),
    ("WAS", "MIA"),
    ("ATL", "MIA"),
    ("ATL", "DFW"),
    ("ATL", "CHI"),
    ("ATL", "LAX"),
    ("MIA", "DFW"),
    ("CHI", "DEN"),
    ("CHI", "DFW"),
    ("CHI", "SEA"),
    ("DFW", "DEN"),
    ("DFW", "LAX"),
    ("DFW", "SJC"),
    ("DEN", "SEA"),
    ("DEN", "SJC"),
    ("DEN", "LAX"),
    ("SEA", "SJC"),
    ("SEA", "LAX"),
    ("SJC", "LAX"),
];

/// Builds the 12-site North-America overlay used throughout the
/// evaluation (60 directed edges, latencies from fibre-route distance).
///
/// # Example
///
/// ```
/// let g = dg_topology::presets::north_america_12();
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 60);
/// ```
pub fn north_america_12() -> Graph {
    let mut b = GraphBuilder::new();
    for (name, lat, lon) in NORTH_AMERICA_SITES {
        b.add_node_at(name, GeoPoint::new(lat, lon));
    }
    for (x, y) in NORTH_AMERICA_LINKS {
        let (mut ids, mut pts) = (Vec::new(), Vec::new());
        for name in [x, y] {
            let mut builder_probe = None;
            // Builder has no name lookup; recompute from the site table.
            for (i, (n, lat, lon)) in NORTH_AMERICA_SITES.iter().enumerate() {
                if *n == name {
                    builder_probe = Some((NodeId::new(i as u32), GeoPoint::new(*lat, *lon)));
                }
            }
            let (id, pt) = builder_probe.expect("link references a known site");
            ids.push(id);
            pts.push(pt);
        }
        let latency = pts[0].propagation_latency(&pts[1]);
        b.add_link(ids[0], ids[1], latency, 1).expect("preset links are valid");
    }
    b.build()
}

/// The 16 transcontinental flows the evaluation measures: each of the
/// four eastern sites (NYC, JHU, WAS, BOS) sending to each of the four
/// western sites (SEA, SJC, LAX, DEN).
pub fn transcontinental_flows(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    let east = ["NYC", "JHU", "WAS", "BOS"];
    let west = ["SEA", "SJC", "LAX", "DEN"];
    let mut flows = Vec::with_capacity(16);
    for e in east {
        for w in west {
            flows.push((
                graph.node_by_name(e).expect("eastern site exists"),
                graph.node_by_name(w).expect("western site exists"),
            ));
        }
    }
    flows
}

/// The four non-American sites of the global topology.
pub const GLOBAL_EXTRA_SITES: [(&str, f64, f64); 4] =
    [("LON", 51.51, -0.13), ("FRA", 50.11, 8.68), ("TYO", 35.68, 139.65), ("HKG", 22.32, 114.17)];

/// Intercontinental links of the global topology (submarine-cable
/// routes), by site name.
pub const GLOBAL_EXTRA_LINKS: [(&str, &str); 9] = [
    ("LON", "NYC"),
    ("LON", "BOS"),
    ("LON", "FRA"),
    ("FRA", "NYC"),
    ("FRA", "WAS"),
    ("TYO", "SEA"),
    ("TYO", "SJC"),
    ("TYO", "HKG"),
    ("HKG", "SJC"),
];

/// The 16-site global overlay: [`north_america_12`] plus London,
/// Frankfurt, Tokyo, and Hong Kong — the three-continent span of the
/// commercial overlay the paper measured.
///
/// Intercontinental propagation is 35–55 ms one way, so global flows
/// need a larger deadline than the US-only 65 ms; see
/// [`intercontinental_flows`].
///
/// # Example
///
/// ```
/// let g = dg_topology::presets::global_16();
/// assert_eq!(g.node_count(), 16);
/// assert!(g.node_by_name("TYO").is_some());
/// ```
pub fn global_16() -> Graph {
    let mut b = GraphBuilder::new();
    let mut positions: Vec<(String, GeoPoint)> = Vec::new();
    for (name, lat, lon) in NORTH_AMERICA_SITES.iter().chain(GLOBAL_EXTRA_SITES.iter()) {
        let p = GeoPoint::new(*lat, *lon);
        b.add_node_at(name, p);
        positions.push((name.to_string(), p));
    }
    let find = |name: &str| {
        positions
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (NodeId::new(i as u32), positions[i].1))
            .expect("link references a known site")
    };
    for (x, y) in NORTH_AMERICA_LINKS.iter().chain(GLOBAL_EXTRA_LINKS.iter()) {
        let (a, pa) = find(x);
        let (bb, pb) = find(y);
        b.add_link(a, bb, pa.propagation_latency(&pb), 1).expect("preset links are valid");
    }
    b.build()
}

/// The eight intercontinental flows of the global evaluation (each
/// European/Asian site sending to two distant American sites), with
/// the one-way deadline that makes them feasible (110 ms — roughly the
/// global analogue of the US flows' 65 ms).
pub fn intercontinental_flows(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    [
        ("LON", "SJC"),
        ("LON", "LAX"),
        ("FRA", "SEA"),
        ("FRA", "DEN"),
        ("TYO", "NYC"),
        ("TYO", "WAS"),
        ("HKG", "JHU"),
        ("HKG", "BOS"),
    ]
    .iter()
    .map(|(s, t)| {
        (
            graph.node_by_name(s).expect("global site exists"),
            graph.node_by_name(t).expect("global site exists"),
        )
    })
    .collect()
}

/// A bidirectional ring of `n` nodes with uniform link latency.
///
/// Handy for tests: exactly two node-disjoint paths exist between any
/// distinct pair.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, latency: Micros) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(&format!("R{i}"))).collect();
    for i in 0..n {
        b.add_link(nodes[i], nodes[(i + 1) % n], latency, 1).expect("ring links are valid");
    }
    b.build()
}

/// A `rows x cols` grid with uniform link latency.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize, latency: Micros) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new();
    let mut ids = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            ids.push(b.add_node(&format!("G{r}_{c}")));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b.add_link(ids[i], ids[i + 1], latency, 1).expect("grid links are valid");
            }
            if r + 1 < rows {
                b.add_link(ids[i], ids[i + cols], latency, 1).expect("grid links are valid");
            }
        }
    }
    b.build()
}

/// A random geometric overlay: `n` sites placed uniformly on a
/// `width x width` kilometre square, linked when within `radius_km`,
/// with latencies from the link distances. Deterministic per `seed`.
///
/// Useful for scaling studies: the evaluation topology has 12 sites,
/// but the algorithms must behave on much larger overlays.
///
/// # Panics
///
/// Panics if `n == 0` or `radius_km <= 0`.
pub fn random_geometric(n: usize, width_km: f64, radius_km: f64, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(n > 0, "at least one node required");
    assert!(radius_km > 0.0, "radius must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let p = (rng.gen_range(0.0..width_km), rng.gen_range(0.0..width_km));
            b.add_node(&format!("V{i}"));
            p
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let (dx, dy) = (positions[i].0 - positions[j].0, positions[i].1 - positions[j].1);
            let km = (dx * dx + dy * dy).sqrt();
            if km <= radius_km {
                // 5 us/km of fibre plus per-hop overhead, as in geo.rs.
                let latency = Micros::from_micros((km * 5.0).round() as u64 + 200);
                b.add_link(NodeId::new(i as u32), NodeId::new(j as u32), latency, 1)
                    .expect("geometric links are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;

    #[test]
    fn north_america_shape() {
        let g = north_america_12();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 60);
        // Every edge has its reverse (bidirectional links).
        for e in g.edges() {
            assert!(g.reverse_edge(e).is_some());
        }
        // Every node participates in at least 2 links.
        for n in g.nodes() {
            assert!(g.out_edges(n).len() >= 2, "{} under-connected", g.node(n).name);
        }
    }

    #[test]
    fn transcontinental_latencies_fit_65ms_budget() {
        let g = north_america_12();
        for (s, t) in transcontinental_flows(&g) {
            let p = dijkstra::shortest_path(&g, s, t).unwrap();
            let lat = p.latency(&g);
            assert!(
                lat.as_millis() < 50,
                "{} -> {} shortest path {} exceeds budget",
                g.node(s).name,
                g.node(t).name,
                lat
            );
        }
    }

    #[test]
    fn sixteen_flows() {
        let g = north_america_12();
        let flows = transcontinental_flows(&g);
        assert_eq!(flows.len(), 16);
        let unique: std::collections::HashSet<_> = flows.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn ring_has_two_disjoint_routes() {
        use crate::algo::disjoint::{disjoint_pair, Disjointness};
        let g = ring(6, Micros::from_millis(5));
        let a = g.node_by_name("R0").unwrap();
        let d = g.node_by_name("R3").unwrap();
        let (p1, p2) = disjoint_pair(&g, a, d, Disjointness::Node).unwrap();
        assert!(p1.is_node_disjoint(&g, &p2));
        assert_eq!(p1.len() + p2.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        ring(2, Micros::from_millis(1));
    }

    #[test]
    fn global_topology_shape_and_feasibility() {
        use crate::algo::disjoint::{max_disjoint, Disjointness};
        use crate::algo::reach;
        let g = global_16();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), (30 + 9) * 2);
        for e in g.edges() {
            assert!(g.reverse_edge(e).is_some());
        }
        let deadline = Micros::from_millis(110);
        for (s, t) in intercontinental_flows(&g) {
            let p = dijkstra::shortest_path(&g, s, t).unwrap();
            assert!(
                p.latency(&g) <= deadline,
                "{} -> {} shortest {} misses 110ms",
                g.node(s).name,
                g.node(t).name,
                p.latency(&g)
            );
            assert!(
                max_disjoint(&g, s, t, Disjointness::Node) >= 2,
                "{} -> {} lacks a disjoint pair",
                g.node(s).name,
                g.node(t).name
            );
            assert!(reach::deadline_feasible(&g, s, t, deadline));
        }
    }

    #[test]
    fn global_preserves_the_us_core() {
        let na = north_america_12();
        let g = global_16();
        // The first 12 nodes and 60 edges are exactly the US overlay.
        for n in na.nodes() {
            assert_eq!(g.node(n).name, na.node(n).name);
        }
        for e in na.edges() {
            assert_eq!(g.edge(e).src, na.edge(e).src);
            assert_eq!(g.edge(e).dst, na.edge(e).dst);
            assert_eq!(g.edge(e).latency, na.edge(e).latency);
        }
    }

    #[test]
    fn intercontinental_latency_regime() {
        let g = global_16();
        let lon = g.node_by_name("LON").unwrap();
        let nyc = g.node_by_name("NYC").unwrap();
        let lat = g.edge(g.edge_between(lon, nyc).unwrap()).latency;
        assert!(lat > Micros::from_millis(30) && lat < Micros::from_millis(45), "LON-NYC {lat}");
        let tyo = g.node_by_name("TYO").unwrap();
        let sjc = g.node_by_name("SJC").unwrap();
        let lat = g.edge(g.edge_between(tyo, sjc).unwrap()).latency;
        assert!(lat > Micros::from_millis(45) && lat < Micros::from_millis(65), "TYO-SJC {lat}");
    }

    #[test]
    fn random_geometric_is_deterministic_and_connected_enough() {
        let a = random_geometric(30, 1_000.0, 400.0, 9);
        let b = random_geometric(30, 1_000.0, 400.0, 9);
        assert_eq!(a, b);
        let c = random_geometric(30, 1_000.0, 400.0, 10);
        assert_ne!(a, c);
        assert_eq!(a.node_count(), 30);
        // Every edge respects the radius-derived latency bound.
        for e in a.edges() {
            let lat = a.edge(e).latency.as_micros();
            assert!(lat <= 400 * 5 + 200, "latency {lat} exceeds radius bound");
            assert!(a.reverse_edge(e).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn geometric_rejects_zero_radius() {
        random_geometric(5, 100.0, 0.0, 1);
    }

    #[test]
    fn grid_connectivity() {
        let g = grid(3, 4, Micros::from_millis(1));
        assert_eq!(g.node_count(), 12);
        // Interior edges: horizontal 3*3, vertical 2*4 = 17 links = 34 edges.
        assert_eq!(g.edge_count(), 34);
        let a = g.node_by_name("G0_0").unwrap();
        let z = g.node_by_name("G2_3").unwrap();
        let p = dijkstra::shortest_path(&g, a, z).unwrap();
        assert_eq!(p.len(), 5); // Manhattan distance.
    }
}
