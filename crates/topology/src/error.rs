//! Error types for topology construction and queries.

use crate::{EdgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and routing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A node id referenced an index outside the graph.
    UnknownNode(NodeId),
    /// An edge id referenced an index outside the graph.
    UnknownEdge(EdgeId),
    /// A node name was registered twice.
    DuplicateNodeName(String),
    /// An identical directed edge (same endpoints) was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// An edge connected a node to itself.
    SelfLoop(NodeId),
    /// No route exists between the requested endpoints.
    NoRoute(NodeId, NodeId),
    /// Fewer disjoint paths exist than were requested.
    InsufficientDisjointPaths {
        /// Number of disjoint paths requested.
        requested: usize,
        /// Number of disjoint paths that exist.
        available: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            TopologyError::DuplicateNodeName(name) => {
                write!(f, "duplicate node name {name:?}")
            }
            TopologyError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge {u} -> {v}")
            }
            TopologyError::SelfLoop(n) => write!(f, "self loop on node {n}"),
            TopologyError::NoRoute(s, t) => write!(f, "no route from {s} to {t}"),
            TopologyError::InsufficientDisjointPaths { requested, available } => {
                write!(f, "requested {requested} disjoint paths but only {available} exist")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            TopologyError::UnknownNode(NodeId::new(1)).to_string(),
            TopologyError::UnknownEdge(EdgeId::new(2)).to_string(),
            TopologyError::DuplicateNodeName("NYC".into()).to_string(),
            TopologyError::DuplicateEdge(NodeId::new(0), NodeId::new(1)).to_string(),
            TopologyError::SelfLoop(NodeId::new(3)).to_string(),
            TopologyError::NoRoute(NodeId::new(0), NodeId::new(1)).to_string(),
            TopologyError::InsufficientDisjointPaths { requested: 2, available: 1 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with('r'));
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync>(_: E) {}
        takes_error(TopologyError::SelfLoop(NodeId::new(0)));
    }
}
