//! Bellman–Ford shortest paths.
//!
//! Used in two roles: as a slow oracle for property-testing Dijkstra, and
//! as the negative-weight-capable core of Bhandari's disjoint-path
//! algorithm (which searches residual graphs containing negated arcs).

use crate::{Graph, Micros, NodeId};

/// A directed arc in an ad-hoc arc list (see [`ArcList`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Tail node index.
    pub from: usize,
    /// Head node index.
    pub to: usize,
    /// Weight in microseconds; may be negative in residual graphs.
    pub weight: i64,
}

/// A lightweight directed graph given as a plain arc list.
///
/// Bhandari's algorithm builds residual graphs that contain arcs not
/// present in the overlay [`Graph`] (reversed path edges with negated
/// weights), so the Bellman–Ford core operates on this representation.
#[derive(Debug, Clone, Default)]
pub struct ArcList {
    /// Number of nodes; arcs must reference indices `< node_count`.
    pub node_count: usize,
    /// The arcs.
    pub arcs: Vec<Arc>,
}

impl ArcList {
    /// Shortest-path tree from `src`, as `(distance, predecessor arc index)`.
    ///
    /// Unreachable nodes get `i64::MAX` distance and no predecessor. The
    /// residual graphs produced by Bhandari contain negative arcs but no
    /// negative cycles, so plain Bellman–Ford applies.
    pub fn bellman_ford(&self, src: usize) -> (Vec<i64>, Vec<Option<usize>>) {
        let mut dist = vec![i64::MAX; self.node_count];
        let mut prev: Vec<Option<usize>> = vec![None; self.node_count];
        dist[src] = 0;
        for _ in 0..self.node_count.saturating_sub(1) {
            let mut changed = false;
            for (i, a) in self.arcs.iter().enumerate() {
                if dist[a.from] == i64::MAX {
                    continue;
                }
                let nd = dist[a.from] + a.weight;
                if nd < dist[a.to] {
                    dist[a.to] = nd;
                    prev[a.to] = Some(i);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (dist, prev)
    }

    /// Arc indices of a shortest path `src -> dst`, or `None` if unreachable.
    pub fn shortest_path(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let (dist, prev) = self.bellman_ford(src);
        if dist[dst] == i64::MAX {
            return None;
        }
        let mut arcs = Vec::new();
        let mut at = dst;
        while at != src {
            let i = prev[at]?;
            arcs.push(i);
            at = self.arcs[i].from;
        }
        arcs.reverse();
        Some(arcs)
    }
}

/// Shortest distances from `src` in the overlay graph, as an oracle.
///
/// Semantically identical to [`crate::algo::dijkstra::distances_from`]
/// but computed with Bellman–Ford; property tests compare the two.
pub fn distances_from(graph: &Graph, src: NodeId) -> Vec<Micros> {
    let arcs = ArcList {
        node_count: graph.node_count(),
        arcs: graph
            .edges()
            .map(|e| {
                let info = graph.edge(e);
                Arc {
                    from: info.src.index(),
                    to: info.dst.index(),
                    weight: info.latency.as_micros() as i64,
                }
            })
            .collect(),
    };
    arcs.bellman_ford(src.index())
        .0
        .into_iter()
        .map(|d| if d == i64::MAX { Micros::MAX } else { Micros::from_micros(d as u64) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::dijkstra, GraphBuilder};

    #[test]
    fn handles_negative_arcs() {
        // 0 -> 1 (5), 0 -> 2 (2), 2 -> 1 (-4): best 0 -> 1 is -2 via 2.
        let arcs = ArcList {
            node_count: 3,
            arcs: vec![
                Arc { from: 0, to: 1, weight: 5 },
                Arc { from: 0, to: 2, weight: 2 },
                Arc { from: 2, to: 1, weight: -4 },
            ],
        };
        let (dist, _) = arcs.bellman_ford(0);
        assert_eq!(dist, vec![0, -2, 2]);
        let path = arcs.shortest_path(0, 1).unwrap();
        assert_eq!(path, vec![1, 2]);
    }

    #[test]
    fn unreachable_returns_none() {
        let arcs = ArcList { node_count: 2, arcs: vec![] };
        assert_eq!(arcs.shortest_path(0, 1), None);
        let (dist, _) = arcs.bellman_ford(0);
        assert_eq!(dist[1], i64::MAX);
    }

    #[test]
    fn matches_dijkstra_on_preset() {
        let g = crate::presets::north_america_12();
        for s in g.nodes() {
            let bf = distances_from(&g, s);
            let dj = dijkstra::distances_from(&g, s, |_| true);
            assert_eq!(bf, dj);
        }
    }

    #[test]
    fn empty_path_for_src_equals_dst() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let g = b.build();
        let arcs = ArcList { node_count: g.node_count(), arcs: vec![] };
        assert_eq!(arcs.shortest_path(a.index(), a.index()), Some(vec![]));
    }
}
