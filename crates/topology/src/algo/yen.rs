//! Yen's algorithm for K shortest loopless paths.
//!
//! Dynamic single-path routing re-ranks alternatives when link state
//! changes; Yen's algorithm supplies the ranked alternatives.

use crate::algo::dijkstra;
use crate::{Graph, NodeId, Path, TopologyError};
use std::collections::HashSet;

/// Returns up to `k` shortest loopless paths from `src` to `dst`,
/// ordered by latency (ties broken deterministically by edge sequence).
///
/// Fewer than `k` paths are returned when the graph does not contain
/// `k` distinct simple paths.
///
/// # Errors
///
/// Returns [`TopologyError::NoRoute`] when no path at all exists (or
/// `src == dst`), and endpoint validation errors.
///
/// # Example
///
/// ```
/// use dg_topology::{presets, algo::yen};
///
/// let g = presets::north_america_12();
/// let s = g.node_by_name("WAS").unwrap();
/// let t = g.node_by_name("SJC").unwrap();
/// let paths = yen::k_shortest_paths(&g, s, t, 3)?;
/// assert!(paths.len() <= 3 && !paths.is_empty());
/// # Ok::<(), dg_topology::TopologyError>(())
/// ```
pub fn k_shortest_paths(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Result<Vec<Path>, TopologyError> {
    graph.check_node(src)?;
    graph.check_node(dst)?;
    if k == 0 {
        return Ok(Vec::new());
    }
    let first = dijkstra::shortest_path(graph, src, dst)?;
    let mut accepted: Vec<Path> = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("accepted is non-empty").clone();
        let last_nodes = last.nodes(graph);
        // Deviate at every prefix of the most recently accepted path.
        for i in 0..last.len() {
            let spur_node = last_nodes[i];
            let root_edges = &last.edges()[..i];

            // Ban edges that would recreate an already-accepted path with
            // the same prefix, and ban root nodes to keep paths simple.
            let mut banned_edges: HashSet<_> = HashSet::new();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges().len() > i && p.edges()[..i] == *root_edges {
                    banned_edges.insert(p.edges()[i]);
                }
            }
            let banned_nodes: HashSet<NodeId> = last_nodes[..i].iter().copied().collect();

            let spur = dijkstra::shortest_path_filtered(graph, spur_node, dst, |e| {
                let info = graph.edge(e);
                !banned_edges.contains(&e)
                    && !banned_nodes.contains(&info.src)
                    && !banned_nodes.contains(&info.dst)
            });
            if let Ok(spur_path) = spur {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(spur_path.edges());
                let candidate = Path::new(graph, edges).expect("spur joins root");
                if !accepted.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take the best candidate (lowest latency, deterministic ties).
        candidates.sort_by_key(|p| (p.latency(graph), p.edges().to_vec()));
        accepted.push(candidates.remove(0));
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Micros};

    fn square() -> Graph {
        // A - B
        // |   |
        // C - D   plus diagonal A - D
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let nb = b.add_node("B");
        let nc = b.add_node("C");
        let nd = b.add_node("D");
        b.add_link(a, nb, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, nc, Micros::from_millis(2), 1).unwrap();
        b.add_link(nb, nd, Micros::from_millis(2), 1).unwrap();
        b.add_link(nc, nd, Micros::from_millis(2), 1).unwrap();
        b.add_link(a, nd, Micros::from_millis(5), 1).unwrap();
        b.build()
    }

    #[test]
    fn returns_paths_in_latency_order() {
        let g = square();
        let a = g.node_by_name("A").unwrap();
        let d = g.node_by_name("D").unwrap();
        let paths = k_shortest_paths(&g, a, d, 3).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].display(&g), "A -> B -> D");
        assert_eq!(paths[1].display(&g), "A -> C -> D");
        assert_eq!(paths[2].display(&g), "A -> D");
        for w in paths.windows(2) {
            assert!(w[0].latency(&g) <= w[1].latency(&g));
        }
    }

    #[test]
    fn all_paths_are_simple_and_distinct() {
        let g = crate::presets::north_america_12();
        let s = g.node_by_name("NYC").unwrap();
        let t = g.node_by_name("SEA").unwrap();
        let paths = k_shortest_paths(&g, s, t, 8).unwrap();
        assert!(paths.len() >= 4);
        for (i, p) in paths.iter().enumerate() {
            assert!(p.is_simple(&g), "path {i} has a loop");
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), t);
            for q in &paths[..i] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn truncates_when_fewer_paths_exist() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let z = b.add_node("Z");
        b.add_link(a, z, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        let paths = k_shortest_paths(&g, a, z, 5).unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn k_zero_yields_empty() {
        let g = square();
        let a = g.node_by_name("A").unwrap();
        let d = g.node_by_name("D").unwrap();
        assert!(k_shortest_paths(&g, a, d, 0).unwrap().is_empty());
    }

    #[test]
    fn no_route_is_an_error() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let z = b.add_node("Z");
        let g = b.build();
        assert_eq!(k_shortest_paths(&g, a, z, 2), Err(TopologyError::NoRoute(a, z)));
    }
}
