//! Bhandari's algorithm for minimum-total-latency disjoint path pairs.
//!
//! The dissemination-graph schemes in `dg-core` build on pairs (and in
//! the k-paths extension, larger sets) of edge- or node-disjoint paths.
//! Bhandari's algorithm finds the set of k disjoint paths whose *total*
//! latency is minimal, which can differ from greedily taking the
//! shortest path first and then routing around it.

use crate::algo::bellman_ford::{Arc, ArcList};
use crate::{EdgeId, Graph, NodeId, Path, TopologyError};
use std::collections::HashSet;

/// Which resources the paths must not share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Disjointness {
    /// Paths share no directed edges.
    Edge,
    /// Paths share no nodes except source and destination (implies edge
    /// disjointness). This is the mode the paper's two-disjoint-path
    /// schemes use: node-disjoint paths survive a full site failure.
    Node,
}

/// Finds two disjoint paths of minimum total latency.
///
/// The returned pair is ordered by latency (shortest first).
///
/// # Errors
///
/// Returns [`TopologyError::InsufficientDisjointPaths`] when the graph
/// does not contain two disjoint routes, and the usual endpoint errors.
///
/// # Example
///
/// ```
/// use dg_topology::{presets, algo::disjoint::{disjoint_pair, Disjointness}};
///
/// let g = presets::north_america_12();
/// let s = g.node_by_name("JHU").unwrap();
/// let t = g.node_by_name("SEA").unwrap();
/// let (p1, p2) = disjoint_pair(&g, s, t, Disjointness::Node)?;
/// assert!(p1.is_node_disjoint(&g, &p2));
/// # Ok::<(), dg_topology::TopologyError>(())
/// ```
pub fn disjoint_pair(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    mode: Disjointness,
) -> Result<(Path, Path), TopologyError> {
    let mut paths = k_disjoint_paths(graph, src, dst, 2, mode)?;
    let second = paths.pop().expect("k_disjoint_paths returned 2 paths");
    let first = paths.pop().expect("k_disjoint_paths returned 2 paths");
    Ok((first, second))
}

/// Finds `k` mutually disjoint paths of minimum total latency.
///
/// Paths are returned sorted by latency, shortest first.
///
/// # Errors
///
/// Returns [`TopologyError::InsufficientDisjointPaths`] (with the number
/// that do exist) when fewer than `k` disjoint routes are available, and
/// [`TopologyError::NoRoute`] when `src == dst` or `k == 0`.
pub fn k_disjoint_paths(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    mode: Disjointness,
) -> Result<Vec<Path>, TopologyError> {
    k_disjoint_paths_filtered(graph, src, dst, k, mode, |_| true)
}

/// Like [`k_disjoint_paths`], restricted to edges passing `usable`.
///
/// # Errors
///
/// Same conditions as [`k_disjoint_paths`].
pub fn k_disjoint_paths_filtered<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    mode: Disjointness,
    usable: F,
) -> Result<Vec<Path>, TopologyError>
where
    F: Fn(EdgeId) -> bool,
{
    k_disjoint_paths_weighted(graph, src, dst, k, mode, |e| {
        if usable(e) {
            Some(graph.edge(e).latency.as_micros() as i64)
        } else {
            None
        }
    })
}

/// Like [`k_disjoint_paths`], under a caller-supplied edge weight (in
/// microseconds); returning `None` from `weight` excludes the edge.
///
/// Dynamic disjoint-path schemes use this to pick the pair minimizing
/// total loss-penalized expected latency under current link state.
///
/// # Errors
///
/// Same conditions as [`k_disjoint_paths`].
pub fn k_disjoint_paths_weighted<W>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    mode: Disjointness,
    weight: W,
) -> Result<Vec<Path>, TopologyError>
where
    W: Fn(EdgeId) -> Option<i64>,
{
    graph.check_node(src)?;
    graph.check_node(dst)?;
    if src == dst || k == 0 {
        return Err(TopologyError::NoRoute(src, dst));
    }

    let base = build_base(graph, mode, &weight);
    let (s, t) = split_endpoints(src, dst, mode);

    let mut used: HashSet<usize> = HashSet::new();
    for round in 0..k {
        let residual = build_residual(&base, &used);
        let Some(path) = residual.arcs.shortest_path(s, t) else {
            return Err(TopologyError::InsufficientDisjointPaths {
                requested: k,
                available: round,
            });
        };
        for arc_idx in path {
            match residual.origin[arc_idx] {
                Origin::Forward(i) => {
                    used.insert(i);
                }
                Origin::ReverseOf(i) => {
                    used.remove(&i);
                }
            }
        }
    }

    let mut paths = decompose(graph, &base, &used, s, t, k);
    paths.sort_by_key(|p| p.latency(graph));
    Ok(paths)
}

/// Maximum number of disjoint paths between `src` and `dst`.
///
/// Thin wrapper over [`crate::algo::maxflow::max_disjoint_paths`],
/// exposed here so callers probing feasibility before requesting paths
/// need only this module.
pub fn max_disjoint(graph: &Graph, src: NodeId, dst: NodeId, mode: Disjointness) -> usize {
    crate::algo::maxflow::max_disjoint_paths(graph, src, dst, mode)
}

pub(crate) struct BaseArc {
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) weight: i64,
    /// The overlay edge this arc represents; `None` for node-internal
    /// arcs introduced by node splitting.
    pub(crate) edge: Option<EdgeId>,
}

pub(crate) struct Base {
    pub(crate) node_count: usize,
    pub(crate) arcs: Vec<BaseArc>,
}

/// Endpoint indices of a flow in the (possibly node-split) arc graph:
/// leave from the source's out-copy, arrive at the destination's
/// in-copy, so intermediate-node capacity 1 is enforced while the
/// endpoints stay shared.
pub(crate) fn split_endpoints(src: NodeId, dst: NodeId, mode: Disjointness) -> (usize, usize) {
    match mode {
        Disjointness::Edge => (src.index(), dst.index()),
        Disjointness::Node => (src.index() * 2 + 1, dst.index() * 2),
    }
}

pub(crate) fn build_base<W>(graph: &Graph, mode: Disjointness, weight: &W) -> Base
where
    W: Fn(EdgeId) -> Option<i64>,
{
    match mode {
        Disjointness::Edge => Base {
            node_count: graph.node_count(),
            arcs: graph
                .edges()
                .filter_map(|e| {
                    let w = weight(e)?;
                    let info = graph.edge(e);
                    Some(BaseArc {
                        from: info.src.index(),
                        to: info.dst.index(),
                        weight: w,
                        edge: Some(e),
                    })
                })
                .collect(),
        },
        Disjointness::Node => {
            // Node v splits into v_in = 2v and v_out = 2v + 1.
            let mut arcs: Vec<BaseArc> = (0..graph.node_count())
                .map(|v| BaseArc { from: v * 2, to: v * 2 + 1, weight: 0, edge: None })
                .collect();
            arcs.extend(graph.edges().filter_map(|e| {
                let w = weight(e)?;
                let info = graph.edge(e);
                Some(BaseArc {
                    from: info.src.index() * 2 + 1,
                    to: info.dst.index() * 2,
                    weight: w,
                    edge: Some(e),
                })
            }));
            Base { node_count: graph.node_count() * 2, arcs }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Origin {
    Forward(usize),
    ReverseOf(usize),
}

struct Residual {
    arcs: ArcList,
    origin: Vec<Origin>,
}

fn build_residual(base: &Base, used: &HashSet<usize>) -> Residual {
    let mut arcs = Vec::with_capacity(base.arcs.len());
    let mut origin = Vec::with_capacity(base.arcs.len());
    for (i, a) in base.arcs.iter().enumerate() {
        if used.contains(&i) {
            arcs.push(Arc { from: a.to, to: a.from, weight: -a.weight });
            origin.push(Origin::ReverseOf(i));
        } else {
            arcs.push(Arc { from: a.from, to: a.to, weight: a.weight });
            origin.push(Origin::Forward(i));
        }
    }
    Residual { arcs: ArcList { node_count: base.node_count, arcs }, origin }
}

/// Splits the union of `k` arc-disjoint s→t paths back into paths.
pub(crate) fn decompose(
    graph: &Graph,
    base: &Base,
    used: &HashSet<usize>,
    s: usize,
    t: usize,
    k: usize,
) -> Vec<Path> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); base.node_count];
    for &i in used {
        out[base.arcs[i].from].push(i);
    }
    let mut paths = Vec::with_capacity(k);
    for _ in 0..k {
        let mut edges = Vec::new();
        let mut at = s;
        while at != t {
            let arc_idx = out[at].pop().expect("balanced degrees guarantee an out-arc");
            let arc = &base.arcs[arc_idx];
            if let Some(e) = arc.edge {
                edges.push(e);
            }
            at = arc.to;
        }
        paths.push(Path::new(graph, edges).expect("decomposed arcs form a path"));
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Micros};

    /// Two vertex-disjoint routes A->Z: via M1 and via M2, plus a tempting
    /// shortcut M1->M2 that a greedy shortest-path-first approach would
    /// take and thereby block the second path.
    fn trap() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let m1 = b.add_node("M1");
        let m2 = b.add_node("M2");
        let z = b.add_node("Z");
        b.add_link(a, m1, Micros::from_millis(1), 1).unwrap();
        b.add_link(m1, m2, Micros::from_millis(1), 1).unwrap();
        b.add_link(m2, z, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, m2, Micros::from_millis(10), 1).unwrap();
        b.add_link(m1, z, Micros::from_millis(10), 1).unwrap();
        b.build()
    }

    #[test]
    fn survives_greedy_trap() {
        let g = trap();
        let a = g.node_by_name("A").unwrap();
        let z = g.node_by_name("Z").unwrap();
        // Greedy would take A-M1-M2-Z (3ms) and then fail to find a
        // node-disjoint second path; Bhandari must find the optimal pair
        // A-M1-Z + A-M2-Z (total 22ms).
        let (p1, p2) = disjoint_pair(&g, a, z, Disjointness::Node).unwrap();
        assert!(p1.is_node_disjoint(&g, &p2));
        let total = p1.latency(&g) + p2.latency(&g);
        assert_eq!(total, Micros::from_millis(22));
    }

    #[test]
    fn pair_is_ordered_by_latency() {
        let g = trap();
        let a = g.node_by_name("A").unwrap();
        let z = g.node_by_name("Z").unwrap();
        let (p1, p2) = disjoint_pair(&g, a, z, Disjointness::Edge).unwrap();
        assert!(p1.latency(&g) <= p2.latency(&g));
    }

    #[test]
    fn edge_mode_allows_shared_nodes() {
        // A -> B -> Z twice over parallel-ish routes that share node B is
        // impossible with simple graphs; instead verify edge mode finds a
        // pair where node mode cannot.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let hub = b.add_node("H");
        let x = b.add_node("X");
        let y = b.add_node("Y");
        let z = b.add_node("Z");
        // Routes: A-X-H-Z and A-Y-H-Z share only node H.
        b.add_link(a, x, Micros::from_millis(1), 1).unwrap();
        b.add_link(x, hub, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, y, Micros::from_millis(1), 1).unwrap();
        b.add_link(y, hub, Micros::from_millis(1), 1).unwrap();
        b.add_link(hub, z, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        assert!(disjoint_pair(&g, a, z, Disjointness::Edge).is_err());
        assert_eq!(
            disjoint_pair(&g, a, z, Disjointness::Node),
            Err(TopologyError::InsufficientDisjointPaths { requested: 2, available: 1 })
        );
    }

    #[test]
    fn reports_available_count() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let m = b.add_node("M");
        let z = b.add_node("Z");
        b.add_link(a, m, Micros::from_millis(1), 1).unwrap();
        b.add_link(m, z, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        assert_eq!(
            k_disjoint_paths(&g, a, z, 3, Disjointness::Edge),
            Err(TopologyError::InsufficientDisjointPaths { requested: 3, available: 1 })
        );
    }

    #[test]
    fn preset_supports_pairs_for_all_transcontinental_flows() {
        let g = crate::presets::north_america_12();
        for (s, t) in crate::presets::transcontinental_flows(&g) {
            let (p1, p2) = disjoint_pair(&g, s, t, Disjointness::Node)
                .unwrap_or_else(|e| panic!("{} -> {}: {e}", g.node(s).name, g.node(t).name));
            assert!(p1.is_node_disjoint(&g, &p2));
            assert!(p1.is_edge_disjoint(&p2));
            assert_eq!(p1.source(), s);
            assert_eq!(p2.destination(), t);
        }
    }

    #[test]
    fn filtered_avoids_banned_edges() {
        let g = trap();
        let a = g.node_by_name("A").unwrap();
        let m1 = g.node_by_name("M1").unwrap();
        let z = g.node_by_name("Z").unwrap();
        let banned = g.edge_between(a, m1).unwrap();
        let result = k_disjoint_paths_filtered(&g, a, z, 2, Disjointness::Node, |e| e != banned);
        // Without A->M1 only one node-disjoint route remains.
        assert_eq!(
            result,
            Err(TopologyError::InsufficientDisjointPaths { requested: 2, available: 1 })
        );
    }

    #[test]
    fn rejects_degenerate_requests() {
        let g = trap();
        let a = g.node_by_name("A").unwrap();
        assert!(k_disjoint_paths(&g, a, a, 2, Disjointness::Edge).is_err());
        let z = g.node_by_name("Z").unwrap();
        assert!(k_disjoint_paths(&g, a, z, 0, Disjointness::Edge).is_err());
    }

    #[test]
    fn three_paths_when_available() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let z = b.add_node("Z");
        let mids: Vec<_> = (0..3).map(|i| b.add_node(&format!("M{i}"))).collect();
        for (i, &m) in mids.iter().enumerate() {
            let w = Micros::from_millis(1 + i as u64);
            b.add_link(a, m, w, 1).unwrap();
            b.add_link(m, z, w, 1).unwrap();
        }
        let g = b.build();
        let paths = k_disjoint_paths(&g, a, z, 3, Disjointness::Node).unwrap();
        assert_eq!(paths.len(), 3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(paths[i].is_node_disjoint(&g, &paths[j]));
            }
        }
        // Sorted by latency.
        assert!(paths[0].latency(&g) <= paths[1].latency(&g));
        assert!(paths[1].latency(&g) <= paths[2].latency(&g));
    }
}
