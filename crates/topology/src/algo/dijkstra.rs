//! Dijkstra shortest paths by latency.

use crate::{EdgeId, Graph, Micros, NodeId, Path, TopologyError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shortest path from `src` to `dst` by total latency.
///
/// # Errors
///
/// Returns [`TopologyError::UnknownNode`] for out-of-range endpoints and
/// [`TopologyError::NoRoute`] when `dst` is unreachable (or equals `src`:
/// the overlay never routes a flow to itself).
///
/// # Example
///
/// ```
/// use dg_topology::{presets, algo::dijkstra};
///
/// let g = presets::north_america_12();
/// let s = g.node_by_name("NYC").unwrap();
/// let t = g.node_by_name("LAX").unwrap();
/// let p = dijkstra::shortest_path(&g, s, t)?;
/// assert_eq!(p.source(), s);
/// assert_eq!(p.destination(), t);
/// # Ok::<(), dg_topology::TopologyError>(())
/// ```
pub fn shortest_path(graph: &Graph, src: NodeId, dst: NodeId) -> Result<Path, TopologyError> {
    shortest_path_filtered(graph, src, dst, |_| true)
}

/// Shortest path using only edges for which `usable` returns true.
///
/// # Errors
///
/// Same conditions as [`shortest_path`].
pub fn shortest_path_filtered<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    usable: F,
) -> Result<Path, TopologyError>
where
    F: Fn(EdgeId) -> bool,
{
    graph.check_node(src)?;
    graph.check_node(dst)?;
    if src == dst {
        return Err(TopologyError::NoRoute(src, dst));
    }
    let (dist, prev) = run(graph, src, Direction::Forward, &usable);
    if dist[dst.index()].is_unreachable() {
        return Err(TopologyError::NoRoute(src, dst));
    }
    let mut edges = Vec::new();
    let mut at = dst;
    while at != src {
        let e = prev[at.index()].expect("reachable node has predecessor");
        edges.push(e);
        at = graph.edge(e).src;
    }
    edges.reverse();
    Path::new(graph, edges)
}

/// Latency of the shortest path from `src` to every node.
///
/// Unreachable nodes get [`Micros::MAX`].
pub fn distances_from<F>(graph: &Graph, src: NodeId, usable: F) -> Vec<Micros>
where
    F: Fn(EdgeId) -> bool,
{
    run(graph, src, Direction::Forward, &usable).0
}

/// Latency of the shortest path from every node to `dst`.
///
/// Computed over reversed edges; unreachable nodes get [`Micros::MAX`].
pub fn distances_to<F>(graph: &Graph, dst: NodeId, usable: F) -> Vec<Micros>
where
    F: Fn(EdgeId) -> bool,
{
    run(graph, dst, Direction::Backward, &usable).0
}

/// Shortest path under a caller-supplied edge weight (in microseconds);
/// returning `None` from `weight` excludes the edge entirely.
///
/// Dynamic routing schemes use this to route on *expected* latency —
/// baseline propagation plus current extra latency, penalized by loss.
///
/// # Errors
///
/// Same conditions as [`shortest_path`].
pub fn shortest_path_weighted<W>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    weight: W,
) -> Result<Path, TopologyError>
where
    W: Fn(EdgeId) -> Option<u64>,
{
    graph.check_node(src)?;
    graph.check_node(dst)?;
    if src == dst {
        return Err(TopologyError::NoRoute(src, dst));
    }
    let n = graph.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &e in graph.out_edges(u) {
            let Some(w) = weight(e) else { continue };
            let v = graph.edge(e).dst;
            let nd = d.saturating_add(w);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(e);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    if dist[dst.index()] == u64::MAX {
        return Err(TopologyError::NoRoute(src, dst));
    }
    let mut edges = Vec::new();
    let mut at = dst;
    while at != src {
        let e = prev[at.index()].expect("reachable node has predecessor");
        edges.push(e);
        at = graph.edge(e).src;
    }
    edges.reverse();
    Path::new(graph, edges)
}

enum Direction {
    Forward,
    Backward,
}

fn run<F>(
    graph: &Graph,
    origin: NodeId,
    direction: Direction,
    usable: &F,
) -> (Vec<Micros>, Vec<Option<EdgeId>>)
where
    F: Fn(EdgeId) -> bool,
{
    let n = graph.node_count();
    let mut dist = vec![Micros::MAX; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[origin.index()] = Micros::ZERO;
    heap.push(Reverse((Micros::ZERO, origin)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        let edges = match direction {
            Direction::Forward => graph.out_edges(u),
            Direction::Backward => graph.in_edges(u),
        };
        for &e in edges {
            if !usable(e) {
                continue;
            }
            let info = graph.edge(e);
            let v = match direction {
                Direction::Forward => info.dst,
                Direction::Backward => info.src,
            };
            let nd = d.saturating_add(info.latency);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(e);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A --1-- B --1-- D, A --5-- C --1-- D: shortest A->D is via B.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let n1 = b.add_node("B");
        let n2 = b.add_node("C");
        let d = b.add_node("D");
        b.add_link(a, n1, Micros::from_millis(1), 1).unwrap();
        b.add_link(n1, d, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, n2, Micros::from_millis(5), 1).unwrap();
        b.add_link(n2, d, Micros::from_millis(1), 1).unwrap();
        b.build()
    }

    #[test]
    fn finds_cheapest_route() {
        let g = diamond();
        let a = g.node_by_name("A").unwrap();
        let d = g.node_by_name("D").unwrap();
        let p = shortest_path(&g, a, d).unwrap();
        assert_eq!(p.display(&g), "A -> B -> D");
        assert_eq!(p.latency(&g), Micros::from_millis(2));
    }

    #[test]
    fn filter_forces_detour() {
        let g = diamond();
        let a = g.node_by_name("A").unwrap();
        let b = g.node_by_name("B").unwrap();
        let d = g.node_by_name("D").unwrap();
        let banned = g.edge_between(a, b).unwrap();
        let p = shortest_path_filtered(&g, a, d, |e| e != banned).unwrap();
        assert_eq!(p.display(&g), "A -> C -> D");
    }

    #[test]
    fn unreachable_and_self_route_error() {
        let mut builder = GraphBuilder::new();
        let a = builder.add_node("A");
        let b = builder.add_node("B");
        let g = builder.build();
        assert_eq!(shortest_path(&g, a, b), Err(TopologyError::NoRoute(a, b)));
        assert_eq!(shortest_path(&g, a, a), Err(TopologyError::NoRoute(a, a)));
        assert!(shortest_path(&g, NodeId::new(9), b).is_err());
    }

    #[test]
    fn distances_from_marks_unreachable() {
        let mut builder = GraphBuilder::new();
        let a = builder.add_node("A");
        let b = builder.add_node("B");
        let c = builder.add_node("C");
        builder.add_edge(a, b, Micros::from_millis(3), 1).unwrap();
        let g = builder.build();
        let d = distances_from(&g, a, |_| true);
        assert_eq!(d[a.index()], Micros::ZERO);
        assert_eq!(d[b.index()], Micros::from_millis(3));
        assert!(d[c.index()].is_unreachable());
    }

    #[test]
    fn distances_to_uses_reverse_edges() {
        let mut builder = GraphBuilder::new();
        let a = builder.add_node("A");
        let b = builder.add_node("B");
        builder.add_edge(a, b, Micros::from_millis(3), 1).unwrap();
        let g = builder.build();
        let d = distances_to(&g, b, |_| true);
        assert_eq!(d[a.index()], Micros::from_millis(3));
        assert_eq!(d[b.index()], Micros::ZERO);
        // No edge B -> A, so distance from B in `distances_to(a)` is MAX.
        let d2 = distances_to(&g, a, |_| true);
        assert!(d2[b.index()].is_unreachable());
    }

    #[test]
    fn forward_and_backward_distances_agree() {
        let g = crate::presets::north_america_12();
        let s = g.node_by_name("NYC").unwrap();
        let from = distances_from(&g, s, |_| true);
        for t in g.nodes() {
            let to = distances_to(&g, t, |_| true);
            assert_eq!(from[t.index()], to[s.index()], "mismatch NYC->{}", g.node(t).name);
        }
    }
}
