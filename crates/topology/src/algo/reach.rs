//! Time-constrained reachability: the edge set of deadline flooding.
//!
//! The paper's optimal-but-expensive benchmark, *time-constrained
//! flooding*, forwards every packet on every edge that can still
//! contribute to on-time delivery. An edge `(u, v)` qualifies when the
//! fastest route `source -> u`, plus the edge itself, plus the fastest
//! route `v -> destination` fits within the deadline.

use crate::algo::dijkstra;
use crate::{EdgeId, Graph, Micros, NodeId, TopologyError};

/// Edges that can lie on some route from `src` to `dst` whose total
/// baseline latency is at most `deadline`.
///
/// The result is empty when even the shortest path misses the deadline.
///
/// # Errors
///
/// Returns endpoint validation errors and [`TopologyError::NoRoute`]
/// when `src == dst`.
///
/// # Example
///
/// ```
/// use dg_topology::{presets, Micros, algo::reach};
///
/// let g = presets::north_america_12();
/// let s = g.node_by_name("NYC").unwrap();
/// let t = g.node_by_name("SJC").unwrap();
/// let edges = reach::time_constrained_edges(&g, s, t, Micros::from_millis(65))?;
/// assert!(!edges.is_empty());
/// # Ok::<(), dg_topology::TopologyError>(())
/// ```
pub fn time_constrained_edges(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    deadline: Micros,
) -> Result<Vec<EdgeId>, TopologyError> {
    graph.check_node(src)?;
    graph.check_node(dst)?;
    if src == dst {
        return Err(TopologyError::NoRoute(src, dst));
    }
    let from_src = dijkstra::distances_from(graph, src, |_| true);
    let to_dst = dijkstra::distances_to(graph, dst, |_| true);
    Ok(graph
        .edges()
        .filter(|&e| {
            let info = graph.edge(e);
            let head = from_src[info.src.index()];
            let tail = to_dst[info.dst.index()];
            if head.is_unreachable() || tail.is_unreachable() {
                return false;
            }
            head.saturating_add(info.latency).saturating_add(tail) <= deadline
        })
        .collect())
}

/// True when the shortest route meets the deadline at baseline latency.
pub fn deadline_feasible(graph: &Graph, src: NodeId, dst: NodeId, deadline: Micros) -> bool {
    match dijkstra::shortest_path(graph, src, dst) {
        Ok(p) => p.latency(graph) <= deadline,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{algo::dijkstra, GraphBuilder};

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let fast = b.add_node("F");
        let slow = b.add_node("S");
        let z = b.add_node("Z");
        b.add_link(a, fast, Micros::from_millis(1), 1).unwrap();
        b.add_link(fast, z, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, slow, Micros::from_millis(10), 1).unwrap();
        b.add_link(slow, z, Micros::from_millis(10), 1).unwrap();
        b.build()
    }

    #[test]
    fn tight_deadline_keeps_only_fast_route() {
        let g = diamond();
        let a = g.node_by_name("A").unwrap();
        let z = g.node_by_name("Z").unwrap();
        let edges = time_constrained_edges(&g, a, z, Micros::from_millis(3)).unwrap();
        let names: Vec<String> = edges
            .iter()
            .map(|&e| {
                let i = g.edge(e);
                format!("{}->{}", g.node(i.src).name, g.node(i.dst).name)
            })
            .collect();
        assert!(names.contains(&"A->F".to_string()));
        assert!(names.contains(&"F->Z".to_string()));
        assert!(!names.iter().any(|n| n.contains('S')));
    }

    #[test]
    fn loose_deadline_admits_everything_useful() {
        let g = diamond();
        let a = g.node_by_name("A").unwrap();
        let z = g.node_by_name("Z").unwrap();
        let edges = time_constrained_edges(&g, a, z, Micros::from_millis(100)).unwrap();
        // Forward edges of both routes qualify; backward edges (Z->F etc.)
        // also qualify under a loose enough deadline since they can sit on
        // no useful route only if head/tail distances exceed it.
        assert!(edges.len() >= 4);
    }

    #[test]
    fn impossible_deadline_yields_empty_set() {
        let g = diamond();
        let a = g.node_by_name("A").unwrap();
        let z = g.node_by_name("Z").unwrap();
        let edges = time_constrained_edges(&g, a, z, Micros::from_micros(10)).unwrap();
        assert!(edges.is_empty());
        assert!(!deadline_feasible(&g, a, z, Micros::from_micros(10)));
        assert!(deadline_feasible(&g, a, z, Micros::from_millis(2)));
    }

    #[test]
    fn every_shortest_path_edge_is_included() {
        let g = crate::presets::north_america_12();
        let s = g.node_by_name("BOS").unwrap();
        let t = g.node_by_name("LAX").unwrap();
        let sp = dijkstra::shortest_path(&g, s, t).unwrap();
        let deadline = sp.latency(&g);
        let edges = time_constrained_edges(&g, s, t, deadline).unwrap();
        for e in sp.edges() {
            assert!(edges.contains(e));
        }
    }

    #[test]
    fn rejects_self_flow() {
        let g = diamond();
        let a = g.node_by_name("A").unwrap();
        assert!(time_constrained_edges(&g, a, a, Micros::from_millis(1)).is_err());
    }
}
