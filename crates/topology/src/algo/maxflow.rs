//! Dinic's max-flow on unit capacities.
//!
//! Used to count the disjoint-path capacity between two sites (Menger's
//! theorem): the max flow with unit edge (or node) capacities equals the
//! number of edge- (or node-) disjoint paths. `dg-core` uses this to
//! size problem graphs, and the test suite uses it as an oracle for
//! Bhandari's algorithm.

use crate::algo::disjoint::Disjointness;
use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// A directed flow network with integer capacities.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    // to, capacity; arcs stored in pairs (i, i^1) = (forward, residual).
    to: Vec<usize>,
    cap: Vec<i64>,
    head: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network with `nodes` vertices and no arcs.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork { to: Vec::new(), cap: Vec::new(), head: vec![Vec::new(); nodes] }
    }

    /// Adds a directed arc `from -> to` with the given capacity.
    pub fn add_arc(&mut self, from: usize, to: usize, capacity: i64) {
        let i = self.to.len();
        self.to.push(to);
        self.cap.push(capacity);
        self.head[from].push(i);
        self.to.push(from);
        self.cap.push(0);
        self.head[to].push(i + 1);
    }

    /// Computes the maximum flow from `s` to `t` (Dinic's algorithm).
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let n = self.head.len();
        let mut flow = 0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &i in &self.head[u] {
                    if self.cap[i] > 0 && level[self.to[i]] == usize::MAX {
                        level[self.to[i]] = level[u] + 1;
                        q.push_back(self.to[i]);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow.
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], it: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while it[u] < self.head[u].len() {
            let i = self.head[u][it[u]];
            let v = self.to[i];
            if self.cap[i] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[i]), level, it);
                if pushed > 0 {
                    self.cap[i] -= pushed;
                    self.cap[i ^ 1] += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

/// Maximum number of disjoint paths from `src` to `dst` (Menger).
///
/// Returns 0 when `src == dst` or either endpoint is out of range.
pub fn max_disjoint_paths(graph: &Graph, src: NodeId, dst: NodeId, mode: Disjointness) -> usize {
    if src == dst || graph.check_node(src).is_err() || graph.check_node(dst).is_err() {
        return 0;
    }
    let mut net;
    let (s, t) = match mode {
        Disjointness::Edge => {
            net = FlowNetwork::new(graph.node_count());
            for e in graph.edges() {
                let info = graph.edge(e);
                net.add_arc(info.src.index(), info.dst.index(), 1);
            }
            (src.index(), dst.index())
        }
        Disjointness::Node => {
            net = FlowNetwork::new(graph.node_count() * 2);
            for v in graph.nodes() {
                let capacity = if v == src || v == dst { i64::MAX / 2 } else { 1 };
                net.add_arc(v.index() * 2, v.index() * 2 + 1, capacity);
            }
            for e in graph.edges() {
                let info = graph.edge(e);
                net.add_arc(info.src.index() * 2 + 1, info.dst.index() * 2, 1);
            }
            (src.index() * 2 + 1, dst.index() * 2)
        }
    };
    net.max_flow(s, t) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Micros};

    #[test]
    fn simple_max_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(0, 2, 2);
        net.add_arc(1, 3, 2);
        net.add_arc(2, 3, 3);
        net.add_arc(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn no_path_means_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn disjoint_count_distinguishes_modes() {
        // Two routes sharing an intermediate hub: edge-disjoint count 2,
        // node-disjoint count 1.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let h = b.add_node("H");
        let x = b.add_node("X");
        let y = b.add_node("Y");
        let z = b.add_node("Z");
        b.add_link(a, x, Micros::from_millis(1), 1).unwrap();
        b.add_link(x, h, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, y, Micros::from_millis(1), 1).unwrap();
        b.add_link(y, h, Micros::from_millis(1), 1).unwrap();
        b.add_link(h, z, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        assert_eq!(max_disjoint_paths(&g, a, z, Disjointness::Edge), 1);
        assert_eq!(max_disjoint_paths(&g, a, z, Disjointness::Node), 1);
        // Add a second hub->z link to create edge-disjointness only at
        // the bottleneck... instead add direct a->z link: both counts rise.
        let mut b2 = GraphBuilder::new();
        let a = b2.add_node("A");
        let h = b2.add_node("H");
        let z = b2.add_node("Z");
        b2.add_link(a, h, Micros::from_millis(1), 1).unwrap();
        b2.add_link(h, z, Micros::from_millis(1), 1).unwrap();
        b2.add_link(a, z, Micros::from_millis(5), 1).unwrap();
        let g2 = b2.build();
        assert_eq!(max_disjoint_paths(&g2, a, z, Disjointness::Edge), 2);
        assert_eq!(max_disjoint_paths(&g2, a, z, Disjointness::Node), 2);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let g = b.build();
        assert_eq!(max_disjoint_paths(&g, a, a, Disjointness::Edge), 0);
        assert_eq!(max_disjoint_paths(&g, a, NodeId::new(9), Disjointness::Edge), 0);
    }

    #[test]
    fn preset_transcontinental_capacity_at_least_two() {
        let g = crate::presets::north_america_12();
        for (s, t) in crate::presets::transcontinental_flows(&g) {
            assert!(
                max_disjoint_paths(&g, s, t, Disjointness::Node) >= 2,
                "{} -> {}",
                g.node(s).name,
                g.node(t).name
            );
        }
    }
}
