//! Suurballe's algorithm for a minimum-total-latency disjoint pair.
//!
//! Functionally equivalent to [`crate::algo::disjoint::disjoint_pair`]
//! (Bhandari), but built on Dijkstra with reduced costs instead of
//! Bellman–Ford over negative arcs: after the first shortest-path pass,
//! every arc is re-weighted by the potentials `w'(u,v) = w + d(u) -
//! d(v) >= 0`, so the residual search needs no negative-weight support.
//! Two independent implementations of the same optimization problem
//! make an excellent cross-check — the property suite asserts they
//! agree on every random graph.

use crate::algo::disjoint::{build_base, decompose, split_endpoints, Base, Disjointness};
use crate::{Graph, NodeId, Path, TopologyError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Finds two disjoint paths of minimum total latency via Suurballe's
/// algorithm; the pair is ordered by latency.
///
/// # Errors
///
/// Same conditions as [`crate::algo::disjoint::disjoint_pair`].
pub fn suurballe_pair(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    mode: Disjointness,
) -> Result<(Path, Path), TopologyError> {
    graph.check_node(src)?;
    graph.check_node(dst)?;
    if src == dst {
        return Err(TopologyError::NoRoute(src, dst));
    }
    let base = build_base(graph, mode, &|e| Some(graph.edge(e).latency.as_micros() as i64));
    let (s, t) = split_endpoints(src, dst, mode);

    // Pass 1: plain Dijkstra for potentials and the first path.
    let out = out_adjacency(&base);
    let (dist, prev) = dijkstra_arcs(&base, &out, s, |_, w| w);
    if dist[t] == i64::MAX {
        return Err(TopologyError::InsufficientDisjointPaths { requested: 2, available: 0 });
    }
    let p1: Vec<usize> = walk_back(&base, &prev, s, t);
    let p1_set: HashSet<usize> = p1.iter().copied().collect();

    // Pass 2: Dijkstra over reduced costs with P1 reversed at cost 0.
    // Arc representation: forward arcs (not on P1) keep reduced cost;
    // P1 arcs appear only reversed.
    let mut arcs2: Vec<(usize, usize, i64, ArcRef)> = Vec::with_capacity(base.arcs.len());
    for (i, a) in base.arcs.iter().enumerate() {
        if dist[a.from] == i64::MAX {
            continue; // unreachable tail: irrelevant in pass 2 too
        }
        if p1_set.contains(&i) {
            arcs2.push((a.to, a.from, 0, ArcRef::ReverseOf(i)));
        } else if dist[a.to] != i64::MAX {
            let reduced = a.weight + dist[a.from] - dist[a.to];
            debug_assert!(reduced >= 0, "potentials must make costs non-negative");
            arcs2.push((a.from, a.to, reduced, ArcRef::Forward(i)));
        }
    }
    let mut out2 = vec![Vec::new(); base.node_count];
    for (j, &(from, ..)) in arcs2.iter().enumerate() {
        out2[from].push(j);
    }
    let (dist2, prev2) = dijkstra_indexed(base.node_count, &arcs2, &out2, s);
    if dist2[t] == i64::MAX {
        return Err(TopologyError::InsufficientDisjointPaths { requested: 2, available: 1 });
    }

    // Combine: P1 plus P2, cancelling anti-parallel usage.
    let mut used = p1_set;
    let mut at = t;
    while at != s {
        let j = prev2[at].expect("reachable node has predecessor");
        match arcs2[j].3 {
            ArcRef::Forward(i) => {
                used.insert(i);
            }
            ArcRef::ReverseOf(i) => {
                used.remove(&i);
            }
        }
        at = arcs2[j].0;
    }

    let mut paths = decompose(graph, &base, &used, s, t, 2);
    paths.sort_by_key(|p| p.latency(graph));
    let second = paths.pop().expect("two disjoint paths");
    let first = paths.pop().expect("two disjoint paths");
    Ok((first, second))
}

#[derive(Clone, Copy)]
enum ArcRef {
    Forward(usize),
    ReverseOf(usize),
}

fn out_adjacency(base: &Base) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); base.node_count];
    for (i, a) in base.arcs.iter().enumerate() {
        out[a.from].push(i);
    }
    out
}

fn dijkstra_arcs(
    base: &Base,
    out: &[Vec<usize>],
    s: usize,
    weight: impl Fn(usize, i64) -> i64,
) -> (Vec<i64>, Vec<Option<usize>>) {
    let mut dist = vec![i64::MAX; base.node_count];
    let mut prev = vec![None; base.node_count];
    let mut heap = BinaryHeap::new();
    dist[s] = 0;
    heap.push(Reverse((0i64, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &i in &out[u] {
            let a = &base.arcs[i];
            let nd = d + weight(i, a.weight);
            if nd < dist[a.to] {
                dist[a.to] = nd;
                prev[a.to] = Some(i);
                heap.push(Reverse((nd, a.to)));
            }
        }
    }
    (dist, prev)
}

fn dijkstra_indexed(
    n: usize,
    arcs: &[(usize, usize, i64, ArcRef)],
    out: &[Vec<usize>],
    s: usize,
) -> (Vec<i64>, Vec<Option<usize>>) {
    let mut dist = vec![i64::MAX; n];
    let mut prev = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[s] = 0;
    heap.push(Reverse((0i64, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &j in &out[u] {
            let (_, to, w, _) = arcs[j];
            let nd = d + w;
            if nd < dist[to] {
                dist[to] = nd;
                prev[to] = Some(j);
                heap.push(Reverse((nd, to)));
            }
        }
    }
    (dist, prev)
}

fn walk_back(base: &Base, prev: &[Option<usize>], s: usize, t: usize) -> Vec<usize> {
    let mut arcs = Vec::new();
    let mut at = t;
    while at != s {
        let i = prev[at].expect("reachable node has predecessor");
        arcs.push(i);
        at = base.arcs[i].from;
    }
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::disjoint::disjoint_pair;
    use crate::{presets, GraphBuilder, Micros};

    #[test]
    fn matches_bhandari_on_the_trap_graph() {
        // Same trap as disjoint.rs: greedy fails, optimal total is 22ms.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let m1 = b.add_node("M1");
        let m2 = b.add_node("M2");
        let z = b.add_node("Z");
        b.add_link(a, m1, Micros::from_millis(1), 1).unwrap();
        b.add_link(m1, m2, Micros::from_millis(1), 1).unwrap();
        b.add_link(m2, z, Micros::from_millis(1), 1).unwrap();
        b.add_link(a, m2, Micros::from_millis(10), 1).unwrap();
        b.add_link(m1, z, Micros::from_millis(10), 1).unwrap();
        let g = b.build();
        let (p1, p2) = suurballe_pair(&g, a, z, Disjointness::Node).unwrap();
        assert!(p1.is_node_disjoint(&g, &p2));
        assert_eq!(p1.latency(&g) + p2.latency(&g), Micros::from_millis(22));
    }

    #[test]
    fn agrees_with_bhandari_on_every_preset_flow() {
        for g in [presets::north_america_12(), presets::global_16()] {
            for s in g.nodes() {
                for t in g.nodes() {
                    if s == t {
                        continue;
                    }
                    for mode in [Disjointness::Edge, Disjointness::Node] {
                        let ours = suurballe_pair(&g, s, t, mode);
                        let theirs = disjoint_pair(&g, s, t, mode);
                        match (ours, theirs) {
                            (Ok((a1, a2)), Ok((b1, b2))) => {
                                assert_eq!(
                                    a1.latency(&g) + a2.latency(&g),
                                    b1.latency(&g) + b2.latency(&g),
                                    "{}->{} {mode:?}",
                                    g.node(s).name,
                                    g.node(t).name
                                );
                            }
                            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                            (a, b) => {
                                panic!("algorithms disagree for {s}->{t} {mode:?}: {a:?} vs {b:?}")
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let g = presets::ring(4, Micros::from_millis(1));
        let a = g.node_by_name("R0").unwrap();
        assert!(suurballe_pair(&g, a, a, Disjointness::Node).is_err());
    }

    #[test]
    fn single_route_reports_one_available() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let m = b.add_node("M");
        let z = b.add_node("Z");
        b.add_link(a, m, Micros::from_millis(1), 1).unwrap();
        b.add_link(m, z, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        assert_eq!(
            suurballe_pair(&g, a, z, Disjointness::Edge),
            Err(TopologyError::InsufficientDisjointPaths { requested: 2, available: 1 })
        );
    }
}
