//! Routing algorithms over the overlay graph.
//!
//! All algorithms operate on latencies as edge weights (the paper routes
//! for timeliness) and accept optional edge filters so callers can
//! express link failures or policy exclusions without copying the graph.

pub mod bellman_ford;
pub mod dijkstra;
pub mod disjoint;
pub mod maxflow;
pub mod reach;
pub mod suurballe;
pub mod yen;
