//! Time units used throughout the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A duration in microseconds.
///
/// Overlay link latencies, deadlines, and simulated clocks are all
/// expressed in whole microseconds; a `u64` comfortably covers both the
/// sub-millisecond granularity of link measurements and multi-week
/// experiment horizons.
///
/// # Example
///
/// ```
/// use dg_topology::Micros;
///
/// let deadline = Micros::from_millis(65);
/// assert_eq!(deadline.as_micros(), 65_000);
/// assert_eq!(deadline + Micros::from_micros(500), Micros::from_micros(65_500));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Micros(u64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0);
    /// The maximum representable duration, used as an "unreachable" sentinel.
    pub const MAX: Micros = Micros(u64::MAX);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Micros(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Returns the duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition; `MAX` is treated as "unreachable" and absorbs.
    pub const fn saturating_add(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction, clamping at zero.
    pub const fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Micros {
        Micros(self.0.saturating_mul(factor))
    }

    /// Returns true if this is the `MAX` "unreachable" sentinel.
    pub const fn is_unreachable(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        Micros(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<u64> for Micros {
    fn from(us: u64) -> Self {
        Micros(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Micros::from_millis(65).as_micros(), 65_000);
        assert_eq!(Micros::from_secs(2).as_millis(), 2_000);
        assert_eq!(Micros::from_micros(999).as_millis(), 0);
        assert_eq!(Micros::from_micros(1_500_000).as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Micros::from_micros(10);
        let b = Micros::from_micros(3);
        assert_eq!(a + b, Micros::from_micros(13));
        assert_eq!(a - b, Micros::from_micros(7));
        let mut c = a;
        c += b;
        assert_eq!(c, Micros::from_micros(13));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Micros::MAX.saturating_add(Micros::from_micros(1)), Micros::MAX);
        assert_eq!(Micros::from_micros(1).saturating_sub(Micros::from_micros(5)), Micros::ZERO);
        assert_eq!(Micros::MAX.saturating_mul(2), Micros::MAX);
        assert!(Micros::MAX.is_unreachable());
        assert!(!Micros::ZERO.is_unreachable());
    }

    #[test]
    fn sum_over_iterator() {
        let total: Micros = (1..=4).map(Micros::from_micros).sum();
        assert_eq!(total, Micros::from_micros(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Micros::from_micros(12).to_string(), "12us");
        assert_eq!(Micros::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(Micros::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn ordering() {
        assert!(Micros::from_millis(1) < Micros::from_millis(2));
        assert!(Micros::MAX > Micros::from_secs(1_000_000));
    }
}
