//! Simple (loopless) paths through the overlay graph.

use crate::{EdgeId, Graph, Micros, NodeId, TopologyError};
use serde::{Deserialize, Serialize};

/// A directed path through the overlay, stored as a sequence of edges.
///
/// Paths are always non-empty and contiguous: each edge starts where the
/// previous one ended. Construct with [`Path::new`], which validates
/// these invariants against a concrete graph.
///
/// # Example
///
/// ```
/// use dg_topology::{presets, algo::dijkstra};
///
/// let g = presets::north_america_12();
/// let p = dijkstra::shortest_path(
///     &g,
///     g.node_by_name("BOS").unwrap(),
///     g.node_by_name("MIA").unwrap(),
/// )?;
/// assert!(p.is_simple(&g));
/// println!("{} in {}", p.display(&g), p.latency(&g));
/// # Ok::<(), dg_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    edges: Vec<EdgeId>,
    src: NodeId,
    dst: NodeId,
}

impl Path {
    /// Builds a path from consecutive edges of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownEdge`] for edges outside the graph
    /// and [`TopologyError::NoRoute`] if `edges` is empty or the edges do
    /// not form a contiguous chain.
    pub fn new(graph: &Graph, edges: Vec<EdgeId>) -> Result<Self, TopologyError> {
        let first = *edges.first().ok_or(TopologyError::NoRoute(NodeId::new(0), NodeId::new(0)))?;
        graph.check_edge(first)?;
        let src = graph.edge(first).src;
        let mut at = src;
        for &e in &edges {
            graph.check_edge(e)?;
            let info = graph.edge(e);
            if info.src != at {
                return Err(TopologyError::NoRoute(src, info.src));
            }
            at = info.dst;
        }
        Ok(Path { edges, src, dst: at })
    }

    /// The path's source node.
    pub fn source(&self) -> NodeId {
        self.src
    }

    /// The path's destination node.
    pub fn destination(&self) -> NodeId {
        self.dst
    }

    /// The edges of the path, in order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (hops).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Paths are never empty; always `false`. Provided for idiom's sake.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The nodes visited, source first, destination last.
    pub fn nodes(&self, graph: &Graph) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.edges.len() + 1);
        nodes.push(self.src);
        for &e in &self.edges {
            nodes.push(graph.edge(e).dst);
        }
        nodes
    }

    /// Sum of baseline edge latencies along the path.
    pub fn latency(&self, graph: &Graph) -> Micros {
        self.edges.iter().map(|&e| graph.edge(e).latency).sum()
    }

    /// Sum of edge costs along the path.
    pub fn cost(&self, graph: &Graph) -> u64 {
        graph.edge_set_cost(self.edges.iter().copied())
    }

    /// True if no intermediate node repeats (the path is simple).
    pub fn is_simple(&self, graph: &Graph) -> bool {
        let nodes = self.nodes(graph);
        let mut seen = std::collections::HashSet::with_capacity(nodes.len());
        nodes.iter().all(|n| seen.insert(*n))
    }

    /// True if `self` and `other` share no edges.
    pub fn is_edge_disjoint(&self, other: &Path) -> bool {
        !self.edges.iter().any(|e| other.edges.contains(e))
    }

    /// True if `self` and `other` share no nodes except source/destination.
    pub fn is_node_disjoint(&self, graph: &Graph, other: &Path) -> bool {
        let mine: std::collections::HashSet<NodeId> =
            self.nodes(graph).into_iter().filter(|&n| n != self.src && n != self.dst).collect();
        other
            .nodes(graph)
            .into_iter()
            .filter(|&n| n != other.src && n != other.dst)
            .all(|n| !mine.contains(&n))
    }

    /// Formats the path as `A -> B -> C` using node names.
    pub fn display(&self, graph: &Graph) -> String {
        self.nodes(graph)
            .iter()
            .map(|&n| graph.node(n).name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line() -> (Graph, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("B");
        let d = b.add_node("C");
        let (e0, _) = b.add_link(a, c, Micros::from_millis(1), 1).unwrap();
        let (e1, _) = b.add_link(c, d, Micros::from_millis(2), 2).unwrap();
        (b.build(), vec![e0, e1])
    }

    #[test]
    fn builds_valid_path() {
        let (g, edges) = line();
        let p = Path::new(&g, edges).unwrap();
        assert_eq!(p.source(), g.node_by_name("A").unwrap());
        assert_eq!(p.destination(), g.node_by_name("C").unwrap());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.latency(&g), Micros::from_millis(3));
        assert_eq!(p.cost(&g), 3);
        assert_eq!(p.display(&g), "A -> B -> C");
    }

    #[test]
    fn rejects_empty_and_discontiguous() {
        let (g, edges) = line();
        assert!(Path::new(&g, vec![]).is_err());
        // Reversed order is not contiguous.
        assert!(Path::new(&g, vec![edges[1], edges[0]]).is_err());
        assert!(Path::new(&g, vec![EdgeId::new(99)]).is_err());
    }

    #[test]
    fn nodes_lists_all_visited() {
        let (g, edges) = line();
        let p = Path::new(&g, edges).unwrap();
        let names: Vec<&str> = p.nodes(&g).iter().map(|&n| g.node(n).name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert!(p.is_simple(&g));
    }

    #[test]
    fn disjointness_checks() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let m1 = b.add_node("M1");
        let m2 = b.add_node("M2");
        let z = b.add_node("Z");
        let (e_am1, _) = b.add_link(a, m1, Micros::from_millis(1), 1).unwrap();
        let (e_m1z, _) = b.add_link(m1, z, Micros::from_millis(1), 1).unwrap();
        let (e_am2, _) = b.add_link(a, m2, Micros::from_millis(1), 1).unwrap();
        let (e_m2z, _) = b.add_link(m2, z, Micros::from_millis(1), 1).unwrap();
        let g = b.build();
        let p1 = Path::new(&g, vec![e_am1, e_m1z]).unwrap();
        let p2 = Path::new(&g, vec![e_am2, e_m2z]).unwrap();
        assert!(p1.is_edge_disjoint(&p2));
        assert!(p1.is_node_disjoint(&g, &p2));
        assert!(!p1.is_edge_disjoint(&p1));
        assert!(!p1.is_node_disjoint(&g, &p1));
    }

    #[test]
    fn serde_round_trip() {
        let (g, edges) = line();
        let p = Path::new(&g, edges).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Path = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
