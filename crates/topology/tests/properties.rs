//! Property-based tests for the topology algorithms.

use dg_topology::algo::disjoint::{k_disjoint_paths, max_disjoint, Disjointness};
use dg_topology::algo::{bellman_ford, dijkstra, reach, yen};
use dg_topology::{Graph, GraphBuilder, Micros, NodeId, TopologyError};
use proptest::prelude::*;

/// Builds a random graph from a list of candidate links, silently
/// skipping self-loops and duplicates.
fn build_graph(n: usize, links: &[(usize, usize, u64)]) -> Graph {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(&format!("N{i}"))).collect();
    for &(x, y, lat) in links {
        let (x, y) = (x % n, y % n);
        if x == y {
            continue;
        }
        let _ = b.add_link(nodes[x], nodes[y], Micros::from_micros(lat + 1), 1);
    }
    b.build()
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (3usize..10, proptest::collection::vec((0usize..10, 0usize..10, 0u64..50_000), 4..40))
        .prop_map(|(n, links)| build_graph(n, &links))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra and Bellman–Ford agree on all shortest distances.
    #[test]
    fn dijkstra_matches_bellman_ford(g in graph_strategy()) {
        for s in g.nodes() {
            let fast = dijkstra::distances_from(&g, s, |_| true);
            let slow = bellman_ford::distances_from(&g, s);
            prop_assert_eq!(fast, slow);
        }
    }

    /// Any path returned by Dijkstra has latency equal to the reported
    /// distance and is simple.
    #[test]
    fn dijkstra_paths_are_consistent(g in graph_strategy()) {
        for s in g.nodes() {
            let dist = dijkstra::distances_from(&g, s, |_| true);
            for t in g.nodes() {
                if s == t { continue; }
                match dijkstra::shortest_path(&g, s, t) {
                    Ok(p) => {
                        prop_assert_eq!(p.latency(&g), dist[t.index()]);
                        prop_assert!(p.is_simple(&g));
                    }
                    Err(TopologyError::NoRoute(..)) => {
                        prop_assert!(dist[t.index()].is_unreachable());
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
    }

    /// Bhandari succeeds exactly when max-flow says k paths exist, and
    /// the returned paths are pairwise disjoint in the requested mode.
    #[test]
    fn bhandari_agrees_with_maxflow(g in graph_strategy(), k in 1usize..4) {
        for mode in [Disjointness::Edge, Disjointness::Node] {
            for s in g.nodes() {
                for t in g.nodes() {
                    if s == t { continue; }
                    let capacity = max_disjoint(&g, s, t, mode);
                    match k_disjoint_paths(&g, s, t, k, mode) {
                        Ok(paths) => {
                            prop_assert!(capacity >= k,
                                "bhandari found {k} paths but maxflow says {capacity}");
                            prop_assert_eq!(paths.len(), k);
                            for i in 0..paths.len() {
                                prop_assert!(paths[i].is_simple(&g));
                                for j in (i + 1)..paths.len() {
                                    prop_assert!(paths[i].is_edge_disjoint(&paths[j]));
                                    if mode == Disjointness::Node {
                                        prop_assert!(paths[i].is_node_disjoint(&g, &paths[j]));
                                    }
                                }
                            }
                        }
                        Err(TopologyError::InsufficientDisjointPaths { available, .. }) => {
                            prop_assert_eq!(available, capacity.min(k));
                            prop_assert!(capacity < k);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
            }
        }
    }

    /// A disjoint pair's total latency is no worse than greedy
    /// shortest-first would achieve (Bhandari is optimal; greedy is a
    /// feasible solution whenever it succeeds).
    #[test]
    fn bhandari_beats_greedy(g in graph_strategy()) {
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t { continue; }
                let Ok(p1) = dijkstra::shortest_path(&g, s, t) else { continue };
                let banned: std::collections::HashSet<_> =
                    p1.edges().iter().copied().collect();
                let Ok(p2) = dijkstra::shortest_path_filtered(&g, s, t,
                    |e| !banned.contains(&e)) else { continue };
                if !p1.is_edge_disjoint(&p2) { continue; }
                let greedy_total = p1.latency(&g) + p2.latency(&g);
                let (q1, q2) = dg_topology::algo::disjoint::disjoint_pair(
                    &g, s, t, Disjointness::Edge).expect("greedy found a pair");
                prop_assert!(q1.latency(&g) + q2.latency(&g) <= greedy_total);
            }
        }
    }

    /// Yen's paths are sorted, simple, distinct, and start with the
    /// true shortest path.
    #[test]
    fn yen_invariants(g in graph_strategy(), k in 1usize..6) {
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t { continue; }
                let Ok(paths) = yen::k_shortest_paths(&g, s, t, k) else { continue };
                prop_assert!(!paths.is_empty() && paths.len() <= k);
                let sp = dijkstra::shortest_path(&g, s, t).unwrap();
                prop_assert_eq!(paths[0].latency(&g), sp.latency(&g));
                for w in paths.windows(2) {
                    prop_assert!(w[0].latency(&g) <= w[1].latency(&g));
                    prop_assert_ne!(&w[0], &w[1]);
                }
                for p in &paths {
                    prop_assert!(p.is_simple(&g));
                    prop_assert_eq!(p.source(), s);
                    prop_assert_eq!(p.destination(), t);
                }
            }
        }
    }

    /// Every edge of every on-deadline Yen path appears in the
    /// time-constrained flooding edge set.
    #[test]
    fn flooding_covers_all_on_time_paths(g in graph_strategy(), deadline_ms in 1u64..200) {
        let deadline = Micros::from_millis(deadline_ms);
        for s in g.nodes() {
            for t in g.nodes() {
                if s == t { continue; }
                let Ok(paths) = yen::k_shortest_paths(&g, s, t, 4) else { continue };
                let edges = reach::time_constrained_edges(&g, s, t, deadline).unwrap();
                for p in paths {
                    if p.latency(&g) <= deadline {
                        for e in p.edges() {
                            prop_assert!(edges.contains(e));
                        }
                    }
                }
            }
        }
    }

    /// Two independent optimal disjoint-pair implementations (Bhandari
    /// over Bellman–Ford, Suurballe over Dijkstra-with-potentials)
    /// agree on success/failure and on the optimal total latency for
    /// every pair on every random graph.
    #[test]
    fn suurballe_agrees_with_bhandari(g in graph_strategy()) {
        use dg_topology::algo::suurballe::suurballe_pair;
        for mode in [Disjointness::Edge, Disjointness::Node] {
            for s in g.nodes() {
                for t in g.nodes() {
                    if s == t { continue; }
                    let a = suurballe_pair(&g, s, t, mode);
                    let b = dg_topology::algo::disjoint::disjoint_pair(&g, s, t, mode);
                    match (a, b) {
                        (Ok((a1, a2)), Ok((b1, b2))) => {
                            prop_assert_eq!(
                                a1.latency(&g) + a2.latency(&g),
                                b1.latency(&g) + b2.latency(&g)
                            );
                            prop_assert!(a1.is_edge_disjoint(&a2));
                            if mode == Disjointness::Node {
                                prop_assert!(a1.is_node_disjoint(&g, &a2));
                            }
                        }
                        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                        (a, b) => return Err(TestCaseError::fail(
                            format!("disagree for {s}->{t} {mode:?}: {a:?} vs {b:?}"))),
                    }
                }
            }
        }
    }

    /// Graph serde round-trips losslessly.
    #[test]
    fn graph_serde_round_trip(g in graph_strategy()) {
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }
}
