//! Golden-seed fixture: the 100-node Waxman overlay at seed 2017 —
//! the topology the scale experiments and CI runs anchor on — pinned
//! as a JSON fixture. Any change to the generator's sampling order,
//! latency model, or repair passes that alters this graph is a
//! breaking change to every recorded benchmark and must show up here,
//! not silently shift results.
//!
//! Regenerate after an *intentional* generator change with:
//! `cargo test -p dg-topology --test golden_topology -- --ignored`

use dg_topology::generate::GeneratorConfig;
use dg_topology::Graph;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/waxman_100_seed_2017.json")
}

fn golden_graph() -> Graph {
    GeneratorConfig::waxman(100, 2017).generate()
}

#[test]
fn waxman_100_seed_2017_matches_the_golden_fixture() {
    let json = std::fs::read_to_string(fixture_path())
        .expect("fixture exists; regenerate with -- --ignored");
    let fixture: Graph = serde_json::from_str(&json).expect("fixture parses");
    let generated = golden_graph();
    assert_eq!(fixture.node_count(), generated.node_count());
    assert_eq!(fixture.edge_count(), generated.edge_count());
    assert_eq!(fixture, generated, "generator output drifted from the golden fixture");
}

/// Not a test: rewrites the fixture from the current generator.
#[test]
#[ignore = "writes the fixture; run explicitly after intentional generator changes"]
fn regenerate_golden_fixture() {
    let json = serde_json::to_string_pretty(&golden_graph()).expect("graph serializes");
    std::fs::write(fixture_path(), json + "\n").expect("fixture dir is writable");
}
