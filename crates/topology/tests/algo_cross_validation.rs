//! Algorithm cross-validation on *generated* topologies.
//!
//! The small-graph property suite (`properties.rs`) exercises the
//! routing algorithms on dense random multigraph-ish inputs; this
//! suite re-validates the same cross-implementation agreements on the
//! realistic overlays the generator produces — the graphs the scale
//! experiments actually run on — at sizes the paper's 12-site preset
//! never reaches.

use dg_topology::algo::disjoint::{disjoint_pair, max_disjoint, Disjointness};
use dg_topology::algo::suurballe::suurballe_pair;
use dg_topology::algo::{bellman_ford, dijkstra, yen};
use dg_topology::generate::GeneratorConfig;
use dg_topology::{Graph, NodeId};
use proptest::prelude::*;

/// A generated overlay plus a deterministic sample of distinct
/// (source, destination) pairs to validate on.
fn topo_with_pairs() -> impl Strategy<Value = (Graph, Vec<(NodeId, NodeId)>)> {
    (
        0usize..2,
        20usize..=60,
        0u64..1_000_000,
        proptest::collection::vec((0usize..1_000, 0usize..1_000), 8),
    )
        .prop_map(|(family, nodes, seed, raw_pairs)| {
            let config = if family == 0 {
                GeneratorConfig::waxman(nodes, seed)
            } else {
                GeneratorConfig::ring_of_cliques(nodes, seed)
            };
            let g = config.generate();
            let n = g.node_count();
            let pairs = raw_pairs
                .into_iter()
                .map(|(a, b)| (a % n, b % n))
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| (NodeId::new(a as u32), NodeId::new(b as u32)))
                .collect();
            (g, pairs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Suurballe's pair is truly edge-disjoint, simple, and exists
    /// exactly when max-flow admits two edge-disjoint paths — which on
    /// generated overlays (min degree 2, 2-edge-connected backbone) it
    /// must for every sampled pair. Bhandari must agree on the optimal
    /// total latency.
    #[test]
    fn disjoint_pair_implementations_agree_on_generated_topologies(
        (g, pairs) in topo_with_pairs()
    ) {
        for (s, t) in pairs {
            let capacity = max_disjoint(&g, s, t, Disjointness::Edge);
            match suurballe_pair(&g, s, t, Disjointness::Edge) {
                Ok((p1, p2)) => {
                    prop_assert!(capacity >= 2, "pair found but maxflow says {capacity}");
                    prop_assert!(p1.is_simple(&g));
                    prop_assert!(p2.is_simple(&g));
                    prop_assert!(p1.is_edge_disjoint(&p2));
                    prop_assert_eq!((p1.source(), p1.destination()), (s, t));
                    prop_assert_eq!((p2.source(), p2.destination()), (s, t));
                    let (b1, b2) = disjoint_pair(&g, s, t, Disjointness::Edge)
                        .expect("bhandari agrees a pair exists");
                    prop_assert_eq!(
                        p1.latency(&g) + p2.latency(&g),
                        b1.latency(&g) + b2.latency(&g)
                    );
                }
                Err(e) => {
                    prop_assert!(capacity < 2,
                        "maxflow says {capacity} but suurballe failed: {e}");
                }
            }
        }
    }

    /// Yen's k shortest paths on a generated overlay are sorted by
    /// latency, loop-free, distinct, anchored by Dijkstra's optimum,
    /// and connect the requested endpoints.
    #[test]
    fn yen_paths_are_sorted_and_loop_free_on_generated_topologies(
        (g, pairs) in topo_with_pairs(), k in 2usize..6
    ) {
        for (s, t) in pairs {
            let paths = yen::k_shortest_paths(&g, s, t, k)
                .expect("generated overlays are connected");
            prop_assert!(!paths.is_empty() && paths.len() <= k);
            let sp = dijkstra::shortest_path(&g, s, t).unwrap();
            prop_assert_eq!(paths[0].latency(&g), sp.latency(&g));
            for w in paths.windows(2) {
                prop_assert!(w[0].latency(&g) <= w[1].latency(&g));
                prop_assert_ne!(&w[0], &w[1]);
            }
            for p in &paths {
                prop_assert!(p.is_simple(&g), "loopy path from yen");
                prop_assert_eq!((p.source(), p.destination()), (s, t));
            }
        }
    }

    /// Dijkstra and Bellman–Ford agree on every shortest distance from
    /// every sampled source of a generated overlay.
    #[test]
    fn shortest_path_implementations_agree_on_generated_topologies(
        (g, pairs) in topo_with_pairs()
    ) {
        for (s, _) in pairs {
            let fast = dijkstra::distances_from(&g, s, |_| true);
            let slow = bellman_ford::distances_from(&g, s);
            prop_assert_eq!(fast, slow);
        }
    }
}
