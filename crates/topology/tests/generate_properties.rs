//! Property battery for the topology generator (`dg_topology::generate`).
//!
//! Every generated overlay — both families, any seed, 50..=120 nodes —
//! must satisfy the structural contract the rest of the reproduction
//! builds on: connected, bidirectionally symmetric, latencies inside
//! the fibre-factor envelope implied by the stored site positions, and
//! bit-identical regeneration from an equal config (including a config
//! that took a serde round trip).

use dg_topology::generate::{CostModel, GeneratorConfig};
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

/// Both families over the size band the scale experiments sweep.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (0usize..2, 50usize..=120, 0u64..1_000_000).prop_map(|(family, nodes, seed)| {
        if family == 0 {
            GeneratorConfig::waxman(nodes, seed)
        } else {
            GeneratorConfig::ring_of_cliques(nodes, seed)
        }
    })
}

/// Nodes reachable from node 0 along directed edges.
fn reachable_count(g: &Graph) -> usize {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::from([NodeId::new(0)]);
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        for &e in g.out_edges(u) {
            let v = g.edge(e).dst;
            if !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated overlay is connected: all sites reachable from
    /// site 0 (with symmetry, that is full strong connectivity).
    #[test]
    fn generated_topologies_are_connected(config in config_strategy()) {
        let g = config.generate();
        prop_assert!(g.node_count() >= 3);
        prop_assert_eq!(reachable_count(&g), g.node_count());
    }

    /// Links come in direction pairs with identical latency and cost:
    /// for every edge u->v there is exactly one v->u with equal
    /// metadata, and no (u, v) appears twice.
    #[test]
    fn generated_links_are_bidirectionally_symmetric(config in config_strategy()) {
        let g = config.generate();
        let mut by_pair: HashMap<(NodeId, NodeId), EdgeId> = HashMap::new();
        for e in g.edges() {
            let info = g.edge(e);
            prop_assert_ne!(info.src, info.dst, "self-loop generated");
            prop_assert!(
                by_pair.insert((info.src, info.dst), e).is_none(),
                "duplicate link {:?}->{:?}", info.src, info.dst
            );
        }
        for e in g.edges() {
            let info = g.edge(e);
            let rev = by_pair.get(&(info.dst, info.src)).copied();
            prop_assert!(rev.is_some(), "missing reverse of {:?}->{:?}", info.src, info.dst);
            let rev = g.edge(rev.unwrap());
            prop_assert_eq!(info.latency, rev.latency);
            prop_assert_eq!(info.cost, rev.cost);
        }
    }

    /// Every link's latency sits inside the fibre-factor envelope for
    /// the great-circle distance between its endpoints' stored
    /// positions, and its cost matches the cost model. The graph is
    /// self-describing: metadata is recomputable from positions alone.
    #[test]
    fn generated_latencies_respect_the_fiber_envelope(config in config_strategy()) {
        let g = config.generate();
        for e in g.edges() {
            let info = g.edge(e);
            let a = g.node(info.src).position.expect("generated sites carry positions");
            let b = g.node(info.dst).position.expect("generated sites carry positions");
            let km = a.distance_km(&b);
            let (lo, hi) = config.latency.bounds_for_km(km);
            prop_assert!(
                (lo..=hi).contains(&info.latency),
                "latency {} outside [{lo}, {hi}] for a {km:.1} km link",
                info.latency
            );
            let expected_cost = match config.cost {
                CostModel::Uniform(c) => c,
                CostModel::DistanceBanded { base, per_1000_km } =>
                    base + per_1000_km * (km / 1000.0).ceil().max(0.0) as u32,
            };
            prop_assert_eq!(info.cost, expected_cost);
            prop_assert!(info.latency >= Micros::from_micros(config.latency.hop_overhead_us));
        }
    }

    /// Equal configs regenerate bit-identical graphs, including a
    /// config that took a serde round trip (the cache-fixture
    /// guarantee: persist the config, not the graph).
    #[test]
    fn generation_is_seed_deterministic_and_serde_stable(config in config_strategy()) {
        let first = config.generate();
        prop_assert_eq!(&first, &config.generate());

        let json = serde_json::to_string(&config).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, config);
        prop_assert_eq!(&back.generate(), &first);

        let graph_json = serde_json::to_string(&first).unwrap();
        let graph_back: Graph = serde_json::from_str(&graph_json).unwrap();
        prop_assert_eq!(&graph_back, &first);
    }

    /// Different seeds differ (the generator actually randomises): two
    /// Waxman draws of the same size from distinct seeds are unequal.
    #[test]
    fn distinct_seeds_produce_distinct_graphs(nodes in 50usize..=120, seed in 0u64..1_000_000) {
        let a = GeneratorConfig::waxman(nodes, seed).generate();
        let b = GeneratorConfig::waxman(nodes, seed + 1).generate();
        prop_assert_ne!(a, b);
    }
}
