//! Summary statistics over trace sets.

use crate::TraceSet;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a [`TraceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of links.
    pub links: usize,
    /// Number of monitoring intervals.
    pub intervals: usize,
    /// Mean loss rate over all link-intervals.
    pub mean_loss: f64,
    /// Highest loss rate observed.
    pub max_loss: f64,
    /// Link-intervals at or above the problem threshold.
    pub problematic_link_intervals: usize,
    /// Total link-intervals.
    pub total_link_intervals: usize,
    /// The threshold used for `problematic_link_intervals`.
    pub loss_threshold: f64,
}

impl TraceStats {
    /// Fraction of link-intervals that were problematic.
    pub fn problematic_fraction(&self) -> f64 {
        if self.total_link_intervals == 0 {
            0.0
        } else {
            self.problematic_link_intervals as f64 / self.total_link_intervals as f64
        }
    }
}

/// Computes summary statistics, counting link-intervals with loss at or
/// above `loss_threshold` as problematic.
pub fn summarize(traces: &TraceSet, loss_threshold: f64) -> TraceStats {
    let links = traces.link_count();
    let intervals = traces.interval_count();
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut problematic = 0;
    for l in 0..links {
        for i in 0..intervals {
            let c = traces.condition_in_interval(dg_topology::EdgeId::new(l as u32), i);
            sum += c.loss_rate;
            max = max.max(c.loss_rate);
            if c.is_problematic(loss_threshold) {
                problematic += 1;
            }
        }
    }
    let total = links * intervals;
    TraceStats {
        links,
        intervals,
        mean_loss: if total == 0 { 0.0 } else { sum / total as f64 },
        max_loss: max,
        problematic_link_intervals: problematic,
        total_link_intervals: total,
        loss_threshold,
    }
}

/// Histogram of loss rates across all link-intervals; `buckets` equal
/// divisions of `[0, 1]`, with 1.0 landing in the last bucket.
///
/// # Panics
///
/// Panics if `buckets == 0`.
pub fn loss_histogram(traces: &TraceSet, buckets: usize) -> Vec<usize> {
    assert!(buckets > 0, "at least one bucket required");
    let mut hist = vec![0usize; buckets];
    for l in 0..traces.link_count() {
        for i in 0..traces.interval_count() {
            let loss =
                traces.condition_in_interval(dg_topology::EdgeId::new(l as u32), i).loss_rate;
            let idx = ((loss * buckets as f64) as usize).min(buckets - 1);
            hist[idx] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkCondition;
    use dg_topology::{EdgeId, Micros};

    fn mixed() -> TraceSet {
        let mut t = TraceSet::clean(2, 4, Micros::from_secs(10)).unwrap();
        t.set_condition(EdgeId::new(0), 0, LinkCondition::new(0.5, Micros::ZERO));
        t.set_condition(EdgeId::new(1), 3, LinkCondition::down());
        t
    }

    #[test]
    fn summarize_counts_problems() {
        let s = summarize(&mixed(), 0.25);
        assert_eq!(s.total_link_intervals, 8);
        assert_eq!(s.problematic_link_intervals, 2);
        assert!((s.mean_loss - 1.5 / 8.0).abs() < 1e-12);
        assert_eq!(s.max_loss, 1.0);
        assert!((s.problematic_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clean_trace_stats_are_zero() {
        let t = TraceSet::clean(3, 5, Micros::from_secs(1)).unwrap();
        let s = summarize(&t, 0.01);
        assert_eq!(s.problematic_link_intervals, 0);
        assert_eq!(s.mean_loss, 0.0);
        assert_eq!(s.problematic_fraction(), 0.0);
    }

    #[test]
    fn histogram_buckets_cover_range() {
        let h = loss_histogram(&mixed(), 4);
        assert_eq!(h.iter().sum::<usize>(), 8);
        assert_eq!(h[0], 6); // six clean link-intervals
        assert_eq!(h[2], 1); // the 0.5 loss
        assert_eq!(h[3], 1); // the full loss lands in the last bucket
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_buckets_panics() {
        loss_histogram(&mixed(), 0);
    }
}
