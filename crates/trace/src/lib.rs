//! Network-condition traces for the dissemination-graph evaluation.
//!
//! The paper's evaluation replays *recorded* per-link loss and latency
//! data through its Playback Network Simulator. This crate supplies the
//! equivalent data layer:
//!
//! - [`LinkCondition`] / [`NetworkState`]: the instantaneous view of
//!   link health that routing schemes react to,
//! - [`TraceSet`]: per-link conditions over time at a fixed monitoring
//!   granularity (the paper's data was collected at 10 s intervals),
//! - [`gen`]: a seeded synthetic WAN generator (Gilbert–Elliott
//!   background loss plus injected problem events) standing in for the
//!   proprietary traces (DESIGN.md §2),
//! - [`analysis`]: classification of problematic intervals by location
//!   relative to a flow (the paper's source/destination finding).
//!
//! # Example
//!
//! ```
//! use dg_topology::presets;
//! use dg_trace::gen::{self, SyntheticWanConfig};
//!
//! let graph = presets::north_america_12();
//! let config = SyntheticWanConfig::calibrated(42);
//! let traces = gen::generate(&graph, &config);
//! assert_eq!(traces.link_count(), graph.edge_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod condition;
pub mod gen;
pub mod stats;
mod trace_set;

pub use condition::{LinkCondition, NetworkState};
pub use trace_set::{TraceError, TraceSet};
