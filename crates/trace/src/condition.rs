//! Instantaneous link conditions and whole-network state.

use dg_topology::{EdgeId, Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};

/// The health of one overlay link during one monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCondition {
    /// Probability that a packet sent on the link is lost, in `[0, 1]`.
    pub loss_rate: f64,
    /// Latency added on top of the link's baseline propagation delay
    /// (queueing, rerouting of the underlying IP path, ...).
    pub extra_latency: Micros,
}

impl LinkCondition {
    /// A perfectly healthy link: no loss, no added latency.
    pub const CLEAN: LinkCondition = LinkCondition { loss_rate: 0.0, extra_latency: Micros::ZERO };

    /// Creates a condition, clamping `loss_rate` into `[0, 1]`.
    pub fn new(loss_rate: f64, extra_latency: Micros) -> Self {
        LinkCondition { loss_rate: loss_rate.clamp(0.0, 1.0), extra_latency }
    }

    /// A fully failed link (all packets lost).
    pub const fn down() -> Self {
        LinkCondition { loss_rate: 1.0, extra_latency: Micros::ZERO }
    }

    /// True when the loss rate reaches `threshold`.
    ///
    /// The problem detector in `dg-core` and the analysis in
    /// [`crate::analysis`] both use this predicate.
    pub fn is_problematic(&self, threshold: f64) -> bool {
        self.loss_rate >= threshold
    }

    /// Combines two impairments affecting the same link: loss
    /// probabilities compose as independent events, extra latencies add.
    pub fn combine(&self, other: &LinkCondition) -> LinkCondition {
        LinkCondition {
            loss_rate: 1.0 - (1.0 - self.loss_rate) * (1.0 - other.loss_rate),
            extra_latency: self.extra_latency.saturating_add(other.extra_latency),
        }
    }
}

impl Default for LinkCondition {
    fn default() -> Self {
        LinkCondition::CLEAN
    }
}

/// A snapshot of every link's condition at one instant.
///
/// This is the view a routing scheme sees when deciding whether (and
/// how) to re-route: dynamic schemes recompute paths over it, and the
/// targeted-redundancy scheme classifies problems from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkState {
    time: Micros,
    conditions: Vec<LinkCondition>,
}

impl NetworkState {
    /// A state with every link clean.
    pub fn clean(edge_count: usize, time: Micros) -> Self {
        NetworkState { time, conditions: vec![LinkCondition::CLEAN; edge_count] }
    }

    /// Builds a state from explicit per-edge conditions.
    pub fn from_conditions(time: Micros, conditions: Vec<LinkCondition>) -> Self {
        NetworkState { time, conditions }
    }

    /// The instant this snapshot describes.
    pub fn time(&self) -> Micros {
        self.time
    }

    /// Number of links covered.
    pub fn link_count(&self) -> usize {
        self.conditions.len()
    }

    /// Condition of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range for this state.
    pub fn condition(&self, edge: EdgeId) -> LinkCondition {
        self.conditions[edge.index()]
    }

    /// Overwrites the condition of `edge`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range for this state.
    pub fn set_condition(&mut self, edge: EdgeId, condition: LinkCondition) {
        self.conditions[edge.index()] = condition;
    }

    /// Edges whose loss rate reaches `threshold`.
    pub fn problematic_edges(&self, threshold: f64) -> Vec<EdgeId> {
        self.conditions
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_problematic(threshold))
            .map(|(i, _)| EdgeId::new(i as u32))
            .collect()
    }

    /// True when any edge incident to `node` (either direction) reaches
    /// the loss `threshold` in `graph`.
    pub fn node_has_problem(&self, graph: &Graph, node: NodeId, threshold: f64) -> bool {
        graph
            .out_edges(node)
            .iter()
            .chain(graph.in_edges(node).iter())
            .any(|&e| self.condition(e).is_problematic(threshold))
    }

    /// The effective latency of `edge`: baseline plus current extra.
    pub fn effective_latency(&self, graph: &Graph, edge: EdgeId) -> Micros {
        graph.edge(edge).latency.saturating_add(self.condition(edge).extra_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    #[test]
    fn clean_condition_is_default() {
        assert_eq!(LinkCondition::default(), LinkCondition::CLEAN);
        assert!(!LinkCondition::CLEAN.is_problematic(0.01));
        assert!(LinkCondition::down().is_problematic(0.99));
    }

    #[test]
    fn new_clamps_loss() {
        assert_eq!(LinkCondition::new(1.5, Micros::ZERO).loss_rate, 1.0);
        assert_eq!(LinkCondition::new(-0.2, Micros::ZERO).loss_rate, 0.0);
    }

    #[test]
    fn combine_composes_independently() {
        let a = LinkCondition::new(0.5, Micros::from_millis(1));
        let b = LinkCondition::new(0.5, Micros::from_millis(2));
        let c = a.combine(&b);
        assert!((c.loss_rate - 0.75).abs() < 1e-12);
        assert_eq!(c.extra_latency, Micros::from_millis(3));
        // Combining with clean is identity.
        let d = a.combine(&LinkCondition::CLEAN);
        assert_eq!(d, a);
    }

    #[test]
    fn state_get_set_and_problem_queries() {
        let g = presets::north_america_12();
        let mut st = NetworkState::clean(g.edge_count(), Micros::from_secs(5));
        assert_eq!(st.time(), Micros::from_secs(5));
        assert_eq!(st.link_count(), 60);
        assert!(st.problematic_edges(0.01).is_empty());

        let nyc = g.node_by_name("NYC").unwrap();
        let e = g.out_edges(nyc)[0];
        st.set_condition(e, LinkCondition::new(0.3, Micros::from_millis(4)));
        assert_eq!(st.problematic_edges(0.2), vec![e]);
        assert!(st.node_has_problem(&g, nyc, 0.2));
        let sea = g.node_by_name("SEA").unwrap();
        assert!(!st.node_has_problem(&g, sea, 0.2));
        assert_eq!(st.effective_latency(&g, e), g.edge(e).latency + Micros::from_millis(4));
    }

    #[test]
    fn node_problem_seen_from_incoming_side() {
        let g = presets::north_america_12();
        let mut st = NetworkState::clean(g.edge_count(), Micros::ZERO);
        let lax = g.node_by_name("LAX").unwrap();
        let incoming = g.in_edges(lax)[0];
        st.set_condition(incoming, LinkCondition::down());
        assert!(st.node_has_problem(&g, lax, 0.5));
    }
}
