//! Classification of problematic intervals by location.
//!
//! The paper's key empirical finding — the motivation for targeted
//! redundancy — is that when routing over two disjoint paths fails, the
//! underlying problem usually sits *around the source or destination*
//! of the flow. This module reproduces that analysis over a
//! [`TraceSet`]: for each monitoring interval it decides whether the
//! flow faced a problem and, if so, where.

use crate::TraceSet;
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Where a problematic interval's trouble was located, relative to a
/// flow from `source` to `destination`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProblemLocation {
    /// Loss on links incident to the source only.
    Source,
    /// Loss on links incident to the destination only.
    Destination,
    /// Loss at both endpoints.
    SourceAndDestination,
    /// Loss only on links touching neither endpoint.
    Middle,
}

/// Per-flow classification counts (the rows of Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowProblemSummary {
    /// Intervals examined.
    pub total_intervals: usize,
    /// Intervals with at least one relevant problematic link.
    pub problematic_intervals: usize,
    /// Problematic intervals classified [`ProblemLocation::Source`].
    pub source: usize,
    /// Problematic intervals classified [`ProblemLocation::Destination`].
    pub destination: usize,
    /// Problematic intervals classified [`ProblemLocation::SourceAndDestination`].
    pub both: usize,
    /// Problematic intervals classified [`ProblemLocation::Middle`].
    pub middle: usize,
}

impl FlowProblemSummary {
    /// Fraction of problematic intervals involving an endpoint
    /// (the paper reports roughly two-thirds).
    pub fn fraction_around_endpoints(&self) -> f64 {
        if self.problematic_intervals == 0 {
            return 0.0;
        }
        (self.source + self.destination + self.both) as f64 / self.problematic_intervals as f64
    }

    /// Merges another summary into this one (for aggregating flows).
    pub fn merge(&mut self, other: &FlowProblemSummary) {
        self.total_intervals += other.total_intervals;
        self.problematic_intervals += other.problematic_intervals;
        self.source += other.source;
        self.destination += other.destination;
        self.both += other.both;
        self.middle += other.middle;
    }
}

/// Classifies one set of problematic edges relative to a flow.
///
/// Returns `None` when `lossy_edges` contains nothing relevant. When an
/// endpoint is involved at all, the interval is attributed to the
/// endpoint(s); `Middle` is reserved for trouble that touches neither,
/// matching the paper's framing (endpoint problems are the ones extra
/// path diversity cannot route around).
pub fn classify_edges(
    graph: &Graph,
    lossy_edges: &[EdgeId],
    source: NodeId,
    destination: NodeId,
) -> Option<ProblemLocation> {
    let mut at_source = false;
    let mut at_destination = false;
    let mut elsewhere = false;
    for &e in lossy_edges {
        let info = graph.edge(e);
        let touches_src = info.src == source || info.dst == source;
        let touches_dst = info.src == destination || info.dst == destination;
        at_source |= touches_src;
        at_destination |= touches_dst;
        elsewhere |= !touches_src && !touches_dst;
    }
    match (at_source, at_destination, elsewhere) {
        (true, true, _) => Some(ProblemLocation::SourceAndDestination),
        (true, false, _) => Some(ProblemLocation::Source),
        (false, true, _) => Some(ProblemLocation::Destination),
        (false, false, true) => Some(ProblemLocation::Middle),
        (false, false, false) => None,
    }
}

/// Classifies every interval of `traces` for the flow `source ->
/// destination`.
///
/// `loss_threshold` is the loss rate at which a link counts as
/// problematic. `relevant_edges` restricts attention to links that can
/// matter for the flow (typically the time-constrained flooding edge
/// set); `None` considers the whole network.
///
/// # Example
///
/// ```
/// use dg_topology::{presets, Micros};
/// use dg_trace::{analysis, LinkCondition, TraceSet};
///
/// let g = presets::north_america_12();
/// let mut traces = TraceSet::clean(g.edge_count(), 5, Micros::from_secs(10))?;
/// let (s, t) = (g.node_by_name("NYC").unwrap(), g.node_by_name("SEA").unwrap());
/// for &e in g.out_edges(s) {
///     traces.set_condition(e, 0, LinkCondition::new(0.5, Micros::ZERO));
/// }
/// let summary = analysis::classify_flow(&g, &traces, s, t, 0.1, None);
/// assert_eq!(summary.source, 1);
/// # Ok::<(), dg_trace::TraceError>(())
/// ```
pub fn classify_flow(
    graph: &Graph,
    traces: &TraceSet,
    source: NodeId,
    destination: NodeId,
    loss_threshold: f64,
    relevant_edges: Option<&[EdgeId]>,
) -> FlowProblemSummary {
    let relevant: Option<HashSet<EdgeId>> =
        relevant_edges.map(|edges| edges.iter().copied().collect());
    let mut summary =
        FlowProblemSummary { total_intervals: traces.interval_count(), ..Default::default() };
    for i in 0..traces.interval_count() {
        let lossy: Vec<EdgeId> = graph
            .edges()
            .filter(|&e| {
                relevant.as_ref().is_none_or(|r| r.contains(&e))
                    && traces.condition_in_interval(e, i).is_problematic(loss_threshold)
            })
            .collect();
        if let Some(loc) = classify_edges(graph, &lossy, source, destination) {
            summary.problematic_intervals += 1;
            match loc {
                ProblemLocation::Source => summary.source += 1,
                ProblemLocation::Destination => summary.destination += 1,
                ProblemLocation::SourceAndDestination => summary.both += 1,
                ProblemLocation::Middle => summary.middle += 1,
            }
        }
    }
    summary
}

/// Distribution of problem-episode durations for one flow: an episode
/// is a maximal run of consecutive problematic intervals. Reactive
/// routing (dynamic schemes, targeted redundancy) only pays off when
/// episodes outlive the detection delay — this is the paper's
/// justification analysis.
///
/// Returns episode durations in *intervals*, in order of occurrence.
pub fn problem_episode_durations(
    graph: &Graph,
    traces: &TraceSet,
    source: NodeId,
    destination: NodeId,
    loss_threshold: f64,
    relevant_edges: Option<&[EdgeId]>,
) -> Vec<usize> {
    let relevant: Option<HashSet<EdgeId>> =
        relevant_edges.map(|edges| edges.iter().copied().collect());
    let mut episodes = Vec::new();
    let mut run = 0usize;
    for i in 0..traces.interval_count() {
        let lossy: Vec<EdgeId> = graph
            .edges()
            .filter(|&e| {
                relevant.as_ref().is_none_or(|r| r.contains(&e))
                    && traces.condition_in_interval(e, i).is_problematic(loss_threshold)
            })
            .collect();
        if classify_edges(graph, &lossy, source, destination).is_some() {
            run += 1;
        } else if run > 0 {
            episodes.push(run);
            run = 0;
        }
    }
    if run > 0 {
        episodes.push(run);
    }
    episodes
}

/// Classifies all `flows` against `traces`, restricting each flow to
/// its time-constrained flooding edge set under `deadline`, and returns
/// the aggregate summary (the paper's Table 1).
pub fn classify_flows(
    graph: &Graph,
    traces: &TraceSet,
    flows: &[(NodeId, NodeId)],
    loss_threshold: f64,
    deadline: Micros,
) -> FlowProblemSummary {
    let mut aggregate = FlowProblemSummary::default();
    for &(s, t) in flows {
        let relevant = dg_topology::algo::reach::time_constrained_edges(graph, s, t, deadline)
            .unwrap_or_default();
        let summary = classify_flow(graph, traces, s, t, loss_threshold, Some(&relevant));
        aggregate.merge(&summary);
    }
    aggregate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkCondition;
    use dg_topology::presets;

    fn setup() -> (Graph, TraceSet, NodeId, NodeId) {
        let g = presets::north_america_12();
        let t = TraceSet::clean(g.edge_count(), 10, Micros::from_secs(10)).unwrap();
        let s = g.node_by_name("NYC").unwrap();
        let d = g.node_by_name("SJC").unwrap();
        (g, t, s, d)
    }

    use dg_topology::Graph;

    #[test]
    fn clean_trace_has_no_problems() {
        let (g, t, s, d) = setup();
        let sum = classify_flow(&g, &t, s, d, 0.1, None);
        assert_eq!(sum.problematic_intervals, 0);
        assert_eq!(sum.total_intervals, 10);
        assert_eq!(sum.fraction_around_endpoints(), 0.0);
    }

    #[test]
    fn source_problem_is_classified() {
        let (g, mut t, s, d) = setup();
        for &e in g.out_edges(s) {
            t.set_condition(e, 3, LinkCondition::new(0.5, Micros::ZERO));
        }
        let sum = classify_flow(&g, &t, s, d, 0.1, None);
        assert_eq!(sum.problematic_intervals, 1);
        assert_eq!(sum.source, 1);
        assert_eq!(sum.destination, 0);
        assert_eq!(sum.fraction_around_endpoints(), 1.0);
    }

    #[test]
    fn destination_problem_is_classified() {
        let (g, mut t, s, d) = setup();
        let e = g.in_edges(d)[0];
        t.set_condition(e, 0, LinkCondition::down());
        let sum = classify_flow(&g, &t, s, d, 0.5, None);
        assert_eq!(sum.destination, 1);
    }

    #[test]
    fn both_endpoints_dominates() {
        let (g, mut t, s, d) = setup();
        t.set_condition(g.out_edges(s)[0], 2, LinkCondition::down());
        t.set_condition(g.in_edges(d)[0], 2, LinkCondition::down());
        // Also a middle problem in the same interval; endpoints win.
        let chi = g.node_by_name("CHI").unwrap();
        let den = g.node_by_name("DEN").unwrap();
        let mid = g.edge_between(chi, den).unwrap();
        t.set_condition(mid, 2, LinkCondition::down());
        let sum = classify_flow(&g, &t, s, d, 0.5, None);
        assert_eq!(sum.both, 1);
        assert_eq!(sum.middle, 0);
    }

    #[test]
    fn middle_problem_away_from_endpoints() {
        let (g, mut t, s, d) = setup();
        let chi = g.node_by_name("CHI").unwrap();
        let den = g.node_by_name("DEN").unwrap();
        let mid = g.edge_between(chi, den).unwrap();
        t.set_condition(mid, 5, LinkCondition::down());
        let sum = classify_flow(&g, &t, s, d, 0.5, None);
        assert_eq!(sum.middle, 1);
        assert_eq!(sum.fraction_around_endpoints(), 0.0);
    }

    #[test]
    fn relevant_edge_filter_hides_faraway_problems() {
        let (g, mut t, s, d) = setup();
        // A severe problem on MIA links is irrelevant to NYC -> SJC when
        // restricted to a tight flooding edge set (35 ms leaves no slack
        // for a detour through the southeast).
        let mia = g.node_by_name("MIA").unwrap();
        for &e in g.out_edges(mia) {
            t.set_condition(e, 1, LinkCondition::down());
        }
        let relevant =
            dg_topology::algo::reach::time_constrained_edges(&g, s, d, Micros::from_millis(35))
                .unwrap();
        assert!(!relevant.iter().any(|&e| {
            let i = g.edge(e);
            i.src == mia || i.dst == mia
        }));
        let sum = classify_flow(&g, &t, s, d, 0.5, Some(&relevant));
        assert_eq!(sum.problematic_intervals, 0);
        // Without the filter it shows up as a middle problem.
        let sum_all = classify_flow(&g, &t, s, d, 0.5, None);
        assert_eq!(sum_all.middle, 1);
    }

    #[test]
    fn classify_edges_handles_empty() {
        let (g, _, s, d) = setup();
        assert_eq!(classify_edges(&g, &[], s, d), None);
    }

    #[test]
    fn episode_durations_find_runs() {
        let (g, mut t, s, d) = setup();
        let e = g.out_edges(s)[0];
        // Problematic intervals 1..3 and 6..7 -> episodes of 2 and 1.
        for i in [1usize, 2, 6] {
            t.set_condition(e, i, LinkCondition::down());
        }
        let eps = problem_episode_durations(&g, &t, s, d, 0.5, None);
        assert_eq!(eps, vec![2, 1]);
    }

    #[test]
    fn episode_at_horizon_end_is_counted() {
        let (g, mut t, s, d) = setup();
        let e = g.out_edges(s)[0];
        for i in 8..10 {
            t.set_condition(e, i, LinkCondition::down());
        }
        assert_eq!(problem_episode_durations(&g, &t, s, d, 0.5, None), vec![2]);
        // A clean trace has no episodes.
        let clean = TraceSet::clean(g.edge_count(), 10, Micros::from_secs(10)).unwrap();
        assert!(problem_episode_durations(&g, &clean, s, d, 0.5, None).is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let a = FlowProblemSummary {
            total_intervals: 10,
            problematic_intervals: 2,
            source: 1,
            destination: 0,
            both: 0,
            middle: 1,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.total_intervals, 20);
        assert_eq!(b.problematic_intervals, 4);
        assert_eq!(b.source, 2);
        assert_eq!(b.middle, 2);
    }

    #[test]
    fn classify_flows_aggregates_transcontinental() {
        let (g, mut t, _, _) = setup();
        let sea = g.node_by_name("SEA").unwrap();
        for &e in g.in_edges(sea) {
            t.set_condition(e, 4, LinkCondition::down());
        }
        let flows = presets::transcontinental_flows(&g);
        let sum = classify_flows(&g, &t, &flows, 0.5, Micros::from_millis(65));
        // SEA is the destination of 4 flows; each counts one
        // destination-problem interval. For other flows the SEA links
        // may be in their flooding set as middle problems.
        assert!(sum.destination >= 4);
        assert_eq!(sum.total_intervals, 10 * 16);
    }
}
