//! Seeded synthetic WAN trace generation.
//!
//! Stands in for the paper's proprietary four-week overlay traces
//! (DESIGN.md §2). Conditions are produced by three composable layers:
//!
//! 1. **Background loss** — an independent Gilbert–Elliott chain per
//!    link, producing the short loss bursts that dominate real overlay
//!    links in normal operation.
//! 2. **Latency jitter** — small per-interval additions to baseline
//!    propagation delay.
//! 3. **Problem events** — the occasional severe episodes the paper's
//!    routing schemes are designed around: a *node problem* impairs
//!    every link incident to one site (what "a problem around the
//!    source/destination" looks like in the data), a *link problem*
//!    impairs a single directed edge.
//!
//! Generation is fully deterministic per seed.

use crate::{LinkCondition, TraceSet};
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Two-state Gilbert–Elliott loss model, evaluated per monitoring
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Probability of moving good → bad at each interval boundary.
    pub enter_bad: f64,
    /// Probability of moving bad → good at each interval boundary.
    pub exit_bad: f64,
    /// Loss rate while in the good state.
    pub loss_good: f64,
    /// Loss rate while in the bad state.
    pub loss_bad: f64,
    /// Extra latency while in the bad state.
    pub extra_latency_bad: Micros,
}

/// Frequency and severity of injected problem events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemProfile {
    /// Expected events per hour per node (node problems) or per
    /// directed edge (link problems).
    pub events_per_hour: f64,
    /// Mean event duration (sampled geometrically, at least one interval).
    pub mean_duration: Micros,
    /// Loss-rate range; each affected link draws independently from it.
    pub loss_range: (f64, f64),
    /// Maximum extra latency; each affected link draws from `[0, max]`.
    pub max_extra_latency: Micros,
    /// Range of each event's *coverage*: the probability that any given
    /// candidate link is impaired by it. Real problems around a site
    /// rarely degrade every attached link equally — partial coverage is
    /// what lets re-routing schemes dodge some (but not all) of them.
    pub coverage_range: (f64, f64),
}

/// Full configuration of the synthetic WAN generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticWanConfig {
    /// RNG seed; equal seeds produce identical traces.
    pub seed: u64,
    /// Trace horizon.
    pub duration: Micros,
    /// Monitoring granularity (the paper's data used 10 s).
    pub interval: Micros,
    /// Maximum per-interval latency jitter added to every link.
    pub jitter_max: Micros,
    /// Background loss process.
    pub background: GilbertElliott,
    /// Site-level problem events.
    pub node_problems: ProblemProfile,
    /// Single-link problem events.
    pub link_problems: ProblemProfile,
    /// Optional relative weights biasing which nodes suffer problems;
    /// `None` means uniform. Must have one entry per node when present.
    pub node_weights: Option<Vec<f64>>,
}

impl SyntheticWanConfig {
    /// The calibrated defaults used by the reproduction's experiments:
    /// one hour of data at 10 s granularity with a problem mix tuned so
    /// the evaluation topology exhibits the paper's regime (most
    /// intervals clean; severe problems rare and biased to no
    /// particular node).
    pub fn calibrated(seed: u64) -> Self {
        SyntheticWanConfig {
            seed,
            duration: Micros::from_secs(3_600),
            interval: Micros::from_secs(10),
            jitter_max: Micros::from_micros(500),
            background: GilbertElliott {
                enter_bad: 0.0015,
                exit_bad: 0.3,
                loss_good: 0.0002,
                loss_bad: 0.03,
                extra_latency_bad: Micros::from_millis(2),
            },
            node_problems: ProblemProfile {
                events_per_hour: 0.5,
                mean_duration: Micros::from_secs(60),
                loss_range: (0.35, 0.75),
                max_extra_latency: Micros::from_millis(5),
                coverage_range: (0.8, 1.0),
            },
            link_problems: ProblemProfile {
                events_per_hour: 0.1,
                mean_duration: Micros::from_secs(60),
                loss_range: (0.1, 0.9),
                max_extra_latency: Micros::from_millis(5),
                coverage_range: (1.0, 1.0),
            },
            node_weights: None,
        }
    }

    /// Number of monitoring intervals implied by duration and interval.
    pub fn interval_count(&self) -> usize {
        (self.duration.as_micros() / self.interval.as_micros()).max(1) as usize
    }
}

/// Where an injected problem struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemKind {
    /// All links incident to this node were impaired.
    Node(NodeId),
    /// A single directed edge was impaired.
    Link(EdgeId),
}

/// Ground truth for one injected problem event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedProblem {
    /// What was hit.
    pub kind: ProblemKind,
    /// First affected interval.
    pub start_interval: usize,
    /// Number of affected intervals (at least 1).
    pub duration_intervals: usize,
    /// Mean of the per-link loss draws, for reporting.
    pub mean_loss: f64,
}

/// Generates a synthetic trace for `graph`.
///
/// # Panics
///
/// Panics if `config.node_weights` is present with the wrong length.
pub fn generate(graph: &Graph, config: &SyntheticWanConfig) -> TraceSet {
    generate_with_events(graph, config).0
}

/// Like [`generate`], also returning the injected problem ground truth
/// (used by tests and the analysis calibration).
///
/// # Panics
///
/// Panics if `config.node_weights` is present with the wrong length.
pub fn generate_with_events(
    graph: &Graph,
    config: &SyntheticWanConfig,
) -> (TraceSet, Vec<InjectedProblem>) {
    if let Some(w) = &config.node_weights {
        assert_eq!(w.len(), graph.node_count(), "node_weights must have one entry per node");
    }
    let intervals = config.interval_count();
    let mut traces = TraceSet::clean(graph.edge_count(), intervals, config.interval)
        .expect("config implies a valid shape");
    let mut rng = StdRng::seed_from_u64(config.seed);

    apply_background(graph, config, intervals, &mut traces, &mut rng);
    let events = apply_problems(graph, config, intervals, &mut traces, &mut rng);
    (traces, events)
}

fn apply_background(
    graph: &Graph,
    config: &SyntheticWanConfig,
    intervals: usize,
    traces: &mut TraceSet,
    rng: &mut StdRng,
) {
    let ge = &config.background;
    for e in graph.edges() {
        let mut bad = false;
        for i in 0..intervals {
            bad = if bad {
                !rng.gen_bool(ge.exit_bad.clamp(0.0, 1.0))
            } else {
                rng.gen_bool(ge.enter_bad.clamp(0.0, 1.0))
            };
            let jitter = if config.jitter_max == Micros::ZERO {
                Micros::ZERO
            } else {
                Micros::from_micros(rng.gen_range(0..=config.jitter_max.as_micros()))
            };
            let cond = if bad {
                LinkCondition::new(ge.loss_bad, ge.extra_latency_bad.saturating_add(jitter))
            } else {
                LinkCondition::new(ge.loss_good, jitter)
            };
            traces.set_condition(e, i, cond);
        }
    }
}

fn apply_problems(
    graph: &Graph,
    config: &SyntheticWanConfig,
    intervals: usize,
    traces: &mut TraceSet,
    rng: &mut StdRng,
) -> Vec<InjectedProblem> {
    let interval_hours = config.interval.as_secs_f64() / 3_600.0;
    let mut events = Vec::new();

    // Node problems.
    let weights: Vec<f64> = match &config.node_weights {
        Some(w) => w.clone(),
        None => vec![1.0; graph.node_count()],
    };
    let mean_weight: f64 = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
    for node in graph.nodes() {
        let rate = config.node_problems.events_per_hour
            * (weights[node.index()] / mean_weight.max(f64::MIN_POSITIVE));
        let p = (rate * interval_hours).clamp(0.0, 1.0);
        for i in 0..intervals {
            if p > 0.0 && rng.gen_bool(p) {
                let d = sample_duration(rng, &config.node_problems, config.interval);
                let incident: Vec<EdgeId> = graph
                    .out_edges(node)
                    .iter()
                    .chain(graph.in_edges(node).iter())
                    .copied()
                    .collect();
                let mean_loss =
                    impair_edges(traces, rng, &incident, i, d, &config.node_problems, intervals);
                events.push(InjectedProblem {
                    kind: ProblemKind::Node(node),
                    start_interval: i,
                    duration_intervals: d,
                    mean_loss,
                });
            }
        }
    }

    // Link problems.
    let p_link = (config.link_problems.events_per_hour * interval_hours).clamp(0.0, 1.0);
    for edge in graph.edges() {
        for i in 0..intervals {
            if p_link > 0.0 && rng.gen_bool(p_link) {
                let d = sample_duration(rng, &config.link_problems, config.interval);
                let mean_loss =
                    impair_edges(traces, rng, &[edge], i, d, &config.link_problems, intervals);
                events.push(InjectedProblem {
                    kind: ProblemKind::Link(edge),
                    start_interval: i,
                    duration_intervals: d,
                    mean_loss,
                });
            }
        }
    }
    events
}

fn sample_duration(rng: &mut StdRng, profile: &ProblemProfile, interval: Micros) -> usize {
    let mean_intervals =
        (profile.mean_duration.as_micros() as f64 / interval.as_micros() as f64).max(1.0);
    // Geometric with the requested mean: success probability 1/mean.
    let p = (1.0 / mean_intervals).clamp(f64::MIN_POSITIVE, 1.0);
    let mut d = 1;
    while !rng.gen_bool(p) && d < 10_000 {
        d += 1;
    }
    d
}

fn impair_edges(
    traces: &mut TraceSet,
    rng: &mut StdRng,
    edges: &[EdgeId],
    start: usize,
    duration: usize,
    profile: &ProblemProfile,
    intervals: usize,
) -> f64 {
    let (lo, hi) = profile.loss_range;
    let (cov_lo, cov_hi) = profile.coverage_range;
    let coverage =
        if cov_hi > cov_lo { rng.gen_range(cov_lo..cov_hi) } else { cov_lo }.clamp(0.0, 1.0);
    // Decide which candidate links the event touches; an event that
    // would touch nothing is given one victim so it never fizzles.
    let mut affected: Vec<EdgeId> =
        edges.iter().copied().filter(|_| rng.gen_bool(coverage)).collect();
    if affected.is_empty() {
        if edges.is_empty() {
            return 0.0;
        }
        affected.push(edges[rng.gen_range(0..edges.len())]);
    }
    let mut loss_sum = 0.0;
    for &e in &affected {
        let loss = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        loss_sum += loss;
        let extra = if profile.max_extra_latency == Micros::ZERO {
            Micros::ZERO
        } else {
            Micros::from_micros(rng.gen_range(0..=profile.max_extra_latency.as_micros()))
        };
        for i in start..(start + duration).min(intervals) {
            traces.impair(e, i, LinkCondition::new(loss, extra));
        }
    }
    loss_sum / affected.len() as f64
}

/// Node weights biasing problem frequency toward "access" sites (the
/// endpoints applications attach to) relative to core transit hubs —
/// the empirical regime the paper's trace analysis reports, where most
/// problems affecting a flow sit around its source or destination.
///
/// Sites named in `access` get `factor`; everything else gets 1.0.
///
/// # Panics
///
/// Panics if an access site name is unknown in `graph`.
pub fn biased_node_weights(graph: &Graph, access: &[&str], factor: f64) -> Vec<f64> {
    let mut weights = vec![1.0; graph.node_count()];
    for name in access {
        let node =
            graph.node_by_name(name).unwrap_or_else(|| panic!("unknown access site {name:?}"));
        weights[node.index()] = factor;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    fn quick_config(seed: u64) -> SyntheticWanConfig {
        let mut c = SyntheticWanConfig::calibrated(seed);
        c.duration = Micros::from_secs(600);
        c
    }

    #[test]
    fn deterministic_per_seed() {
        let g = presets::north_america_12();
        let a = generate(&g, &quick_config(7));
        let b = generate(&g, &quick_config(7));
        assert_eq!(a, b);
        let c = generate(&g, &quick_config(8));
        assert_ne!(a, c);
    }

    #[test]
    fn shape_matches_config() {
        let g = presets::north_america_12();
        let cfg = quick_config(1);
        let t = generate(&g, &cfg);
        assert_eq!(t.link_count(), g.edge_count());
        assert_eq!(t.interval_count(), 60);
        assert_eq!(t.interval_duration(), Micros::from_secs(10));
    }

    #[test]
    fn node_problem_impairs_all_incident_links() {
        let g = presets::north_america_12();
        let mut cfg = quick_config(3);
        // Force frequent node problems and nothing else.
        cfg.background.enter_bad = 0.0;
        cfg.background.loss_good = 0.0;
        cfg.jitter_max = Micros::ZERO;
        cfg.link_problems.events_per_hour = 0.0;
        cfg.node_problems.events_per_hour = 20.0;
        cfg.node_problems.loss_range = (0.5, 0.9);
        cfg.node_problems.coverage_range = (1.0, 1.0);
        let (t, events) = generate_with_events(&g, &cfg);
        let node_event = events
            .iter()
            .find(|e| matches!(e.kind, ProblemKind::Node(_)))
            .expect("high rate guarantees an event");
        let ProblemKind::Node(n) = node_event.kind else { unreachable!() };
        for &e in g.out_edges(n).iter().chain(g.in_edges(n)) {
            let c = t.condition_in_interval(e, node_event.start_interval);
            assert!(c.loss_rate >= 0.5, "incident edge not impaired: {c:?}");
        }
    }

    #[test]
    fn zero_rates_produce_clean_trace() {
        let g = presets::north_america_12();
        let mut cfg = quick_config(5);
        cfg.background.enter_bad = 0.0;
        cfg.background.loss_good = 0.0;
        cfg.jitter_max = Micros::ZERO;
        cfg.node_problems.events_per_hour = 0.0;
        cfg.link_problems.events_per_hour = 0.0;
        let (t, events) = generate_with_events(&g, &cfg);
        assert!(events.is_empty());
        for e in g.edges() {
            for i in 0..t.interval_count() {
                assert_eq!(t.condition_in_interval(e, i), LinkCondition::CLEAN);
            }
        }
    }

    #[test]
    fn node_weights_bias_event_locations() {
        let g = presets::north_america_12();
        let mut cfg = quick_config(11);
        cfg.duration = Micros::from_secs(3_600);
        cfg.node_problems.events_per_hour = 5.0;
        cfg.link_problems.events_per_hour = 0.0;
        let target = g.node_by_name("NYC").unwrap();
        let mut w = vec![0.0; g.node_count()];
        w[target.index()] = 1.0;
        cfg.node_weights = Some(w);
        let (_, events) = generate_with_events(&g, &cfg);
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.kind, ProblemKind::Node(target));
        }
    }

    #[test]
    #[should_panic(expected = "node_weights")]
    fn wrong_weight_length_panics() {
        let g = presets::north_america_12();
        let mut cfg = quick_config(1);
        cfg.node_weights = Some(vec![1.0; 3]);
        generate(&g, &cfg);
    }

    #[test]
    fn background_bursts_occur_and_end() {
        let g = presets::north_america_12();
        let mut cfg = quick_config(13);
        cfg.duration = Micros::from_secs(3_600);
        cfg.background.enter_bad = 0.1;
        cfg.background.exit_bad = 0.5;
        cfg.node_problems.events_per_hour = 0.0;
        cfg.link_problems.events_per_hour = 0.0;
        let t = generate(&g, &cfg);
        let mut bad = 0;
        let mut total = 0;
        for e in g.edges() {
            for i in 0..t.interval_count() {
                total += 1;
                if t.condition_in_interval(e, i).loss_rate >= cfg.background.loss_bad {
                    bad += 1;
                }
            }
        }
        let frac = bad as f64 / total as f64;
        // Stationary bad fraction = enter / (enter + exit) = 1/6 ~ 0.17.
        assert!(frac > 0.08 && frac < 0.3, "bad fraction {frac}");
    }
}
