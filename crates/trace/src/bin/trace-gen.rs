//! `trace-gen` — generate synthetic WAN traces for offline experiments.
//!
//! Produces a trace for the 12-site evaluation topology with the
//! calibrated problem mix, saved as JSON (`.json`) or the compact
//! binary format (anything else).
//!
//! Usage: `trace-gen --out trace.bin [--seed N] [--seconds N]
//! [--node-events F] [--link-events F]`

use dg_topology::Micros;
use dg_trace::gen::{self, SyntheticWanConfig};
use std::collections::HashMap;

fn main() {
    let mut args = HashMap::new();
    let mut argv = std::env::args().skip(1);
    while let Some(key) = argv.next() {
        if let (Some(name), Some(value)) = (key.strip_prefix("--"), argv.next()) {
            args.insert(name.to_string(), value);
        }
    }
    let Some(out) = args.get("out") else {
        eprintln!(
            "usage: trace-gen --out <file> [--seed N] [--seconds N] \
             [--node-events F] [--link-events F]"
        );
        std::process::exit(2);
    };
    let seed: u64 = args.get("seed").map_or(0, |v| v.parse().expect("numeric seed"));
    let seconds: u64 = args.get("seconds").map_or(3_600, |v| v.parse().expect("numeric seconds"));

    let graph = dg_topology::presets::north_america_12();
    let mut config = SyntheticWanConfig::calibrated(seed);
    config.duration = Micros::from_secs(seconds);
    if let Some(v) = args.get("node-events") {
        config.node_problems.events_per_hour = v.parse().expect("numeric rate");
    }
    if let Some(v) = args.get("link-events") {
        config.link_problems.events_per_hour = v.parse().expect("numeric rate");
    }

    let (traces, events) = gen::generate_with_events(&graph, &config);
    let path = std::path::Path::new(out);
    if out.ends_with(".json") {
        traces.save_json(path).expect("trace is writable");
    } else {
        traces.save_binary(path).expect("trace is writable");
    }
    let stats = dg_trace::stats::summarize(&traces, 0.05);
    println!(
        "wrote {out}: {} links x {} intervals, {} problem events, \
         {:.3}% problematic link-intervals",
        traces.link_count(),
        traces.interval_count(),
        events.len(),
        stats.problematic_fraction() * 100.0
    );
}
