//! Per-link condition traces over an experiment horizon.

use crate::{LinkCondition, NetworkState};
use dg_topology::{EdgeId, Micros};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path as FsPath;

/// Errors from trace construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The interval duration was zero or the shape was inconsistent.
    InvalidShape(String),
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// (De)serialization failed.
    Format(serde_json::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidShape(msg) => write!(f, "invalid trace shape: {msg}"),
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::Format(e) => write!(f, "trace format error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::InvalidShape(_) => None,
            TraceError::Io(e) => Some(e),
            TraceError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Format(e)
    }
}

/// Recorded (or synthesized) conditions for every link of a topology
/// over a time horizon, at a fixed monitoring granularity.
///
/// # Example
///
/// ```
/// use dg_trace::{LinkCondition, TraceSet};
/// use dg_topology::{EdgeId, Micros};
///
/// let mut traces = TraceSet::clean(4, 6, Micros::from_secs(10))?;
/// traces.set_condition(EdgeId::new(1), 2, LinkCondition::new(0.5, Micros::ZERO));
/// assert!(traces
///     .condition_at(EdgeId::new(1), Micros::from_secs(25))
///     .is_problematic(0.1));
/// # Ok::<(), dg_trace::TraceError>(())
/// ```
///
/// Layout mirrors the paper's data collection: one record per link per
/// interval (10 s by default), carrying the interval's loss rate and
/// added latency. Time `t` maps to interval `t / interval_duration`;
/// queries past the end return the last interval's conditions, so a
/// simulation can safely run up to (and including) the horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    interval_duration: Micros,
    /// `links[edge][interval]` — outer index is the dense edge id.
    links: Vec<Vec<LinkCondition>>,
}

impl TraceSet {
    /// Creates a trace with every link clean for the whole horizon.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidShape`] when `interval_duration` is
    /// zero or `intervals` is zero.
    pub fn clean(
        link_count: usize,
        intervals: usize,
        interval_duration: Micros,
    ) -> Result<Self, TraceError> {
        if interval_duration == Micros::ZERO {
            return Err(TraceError::InvalidShape("interval duration must be positive".into()));
        }
        if intervals == 0 {
            return Err(TraceError::InvalidShape("at least one interval required".into()));
        }
        Ok(TraceSet {
            interval_duration,
            links: vec![vec![LinkCondition::CLEAN; intervals]; link_count],
        })
    }

    /// Number of links covered.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of monitoring intervals.
    pub fn interval_count(&self) -> usize {
        self.links.first().map_or(0, Vec::len)
    }

    /// Duration of one monitoring interval.
    pub fn interval_duration(&self) -> Micros {
        self.interval_duration
    }

    /// Total trace duration.
    pub fn duration(&self) -> Micros {
        self.interval_duration.saturating_mul(self.interval_count() as u64)
    }

    /// The interval index containing time `t` (clamped to the horizon).
    pub fn interval_at(&self, t: Micros) -> usize {
        let idx = (t.as_micros() / self.interval_duration.as_micros()) as usize;
        idx.min(self.interval_count().saturating_sub(1))
    }

    /// Condition of `edge` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn condition_at(&self, edge: EdgeId, t: Micros) -> LinkCondition {
        self.links[edge.index()][self.interval_at(t)]
    }

    /// Condition of `edge` in a specific interval.
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `interval` is out of range.
    pub fn condition_in_interval(&self, edge: EdgeId, interval: usize) -> LinkCondition {
        self.links[edge.index()][interval]
    }

    /// Overwrites the condition of `edge` in `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `interval` is out of range.
    pub fn set_condition(&mut self, edge: EdgeId, interval: usize, c: LinkCondition) {
        self.links[edge.index()][interval] = c;
    }

    /// Applies an additional impairment on top of what is already
    /// recorded for `edge` in `interval` (see [`LinkCondition::combine`]).
    ///
    /// # Panics
    ///
    /// Panics if `edge` or `interval` is out of range.
    pub fn impair(&mut self, edge: EdgeId, interval: usize, c: LinkCondition) {
        let cur = self.links[edge.index()][interval];
        self.links[edge.index()][interval] = cur.combine(&c);
    }

    /// Snapshot of all link conditions at time `t`.
    pub fn state_at(&self, t: Micros) -> NetworkState {
        let idx = self.interval_at(t);
        NetworkState::from_conditions(t, self.links.iter().map(|l| l[idx]).collect())
    }

    /// Start times of every interval, for schedulers that react to
    /// monitoring updates.
    pub fn interval_starts(&self) -> impl Iterator<Item = Micros> + '_ {
        (0..self.interval_count() as u64).map(move |i| self.interval_duration.saturating_mul(i))
    }

    /// Writes the trace as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] / [`TraceError::Format`] on failure.
    pub fn save_json(&self, path: &FsPath) -> Result<(), TraceError> {
        let file = File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self)?;
        Ok(())
    }

    /// Reads a trace previously written by [`TraceSet::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] / [`TraceError::Format`] on failure,
    /// and [`TraceError::InvalidShape`] if link rows have uneven lengths.
    pub fn load_json(path: &FsPath) -> Result<Self, TraceError> {
        let file = File::open(path)?;
        let set: TraceSet = serde_json::from_reader(BufReader::new(file))?;
        let expected = set.interval_count();
        if set.links.iter().any(|l| l.len() != expected) {
            return Err(TraceError::InvalidShape("uneven link rows".into()));
        }
        if set.interval_duration == Micros::ZERO {
            return Err(TraceError::InvalidShape("interval duration must be positive".into()));
        }
        Ok(set)
    }

    /// Writes the trace in the compact binary format (about 12x smaller
    /// than JSON: one `f32` loss + `u32` extra-latency pair per
    /// link-interval).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failure.
    pub fn save_binary(&self, path: &FsPath) -> Result<(), TraceError> {
        use std::io::Write;
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(BINARY_MAGIC)?;
        w.write_all(&(self.link_count() as u32).to_le_bytes())?;
        w.write_all(&(self.interval_count() as u32).to_le_bytes())?;
        w.write_all(&self.interval_duration.as_micros().to_le_bytes())?;
        for link in &self.links {
            for c in link {
                w.write_all(&(c.loss_rate as f32).to_le_bytes())?;
                let extra = c.extra_latency.as_micros().min(u64::from(u32::MAX)) as u32;
                w.write_all(&extra.to_le_bytes())?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a trace written by [`TraceSet::save_binary`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidShape`] for bad magic, truncation,
    /// or degenerate dimensions, and [`TraceError::Io`] on read failure.
    pub fn load_binary(path: &FsPath) -> Result<Self, TraceError> {
        let data = std::fs::read(path)?;
        let header = BINARY_MAGIC.len() + 4 + 4 + 8;
        if data.len() < header || &data[..BINARY_MAGIC.len()] != BINARY_MAGIC {
            return Err(TraceError::InvalidShape("bad magic or truncated header".into()));
        }
        let mut at = BINARY_MAGIC.len();
        let mut take = |n: usize| {
            let s = &data[at..at + n];
            at += n;
            s
        };
        let links = u32::from_le_bytes(take(4).try_into().expect("4 bytes")) as usize;
        let intervals = u32::from_le_bytes(take(4).try_into().expect("4 bytes")) as usize;
        let interval_us = u64::from_le_bytes(take(8).try_into().expect("8 bytes"));
        if interval_us == 0 || intervals == 0 {
            return Err(TraceError::InvalidShape("degenerate dimensions".into()));
        }
        let need = header + links * intervals * 8;
        if data.len() != need {
            return Err(TraceError::InvalidShape(format!(
                "expected {need} bytes, found {}",
                data.len()
            )));
        }
        let mut set = TraceSet::clean(links, intervals, Micros::from_micros(interval_us))?;
        for l in 0..links {
            for i in 0..intervals {
                let loss = f32::from_le_bytes(take(4).try_into().expect("4 bytes"));
                let extra = u32::from_le_bytes(take(4).try_into().expect("4 bytes"));
                set.links[l][i] =
                    LinkCondition::new(f64::from(loss), Micros::from_micros(u64::from(extra)));
            }
        }
        Ok(set)
    }
}

impl TraceSet {
    /// Extracts the window of intervals `[from, to)` as a new trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidShape`] when the range is empty or
    /// out of bounds.
    pub fn slice(&self, from: usize, to: usize) -> Result<TraceSet, TraceError> {
        if from >= to || to > self.interval_count() {
            return Err(TraceError::InvalidShape(format!(
                "slice {from}..{to} out of 0..{}",
                self.interval_count()
            )));
        }
        Ok(TraceSet {
            interval_duration: self.interval_duration,
            links: self.links.iter().map(|l| l[from..to].to_vec()).collect(),
        })
    }

    /// Appends `other` after this trace in time (e.g. gluing recorded
    /// weeks together).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidShape`] when link counts or interval
    /// durations differ.
    pub fn concat(&self, other: &TraceSet) -> Result<TraceSet, TraceError> {
        if self.link_count() != other.link_count() {
            return Err(TraceError::InvalidShape(format!(
                "link counts differ: {} vs {}",
                self.link_count(),
                other.link_count()
            )));
        }
        if self.interval_duration != other.interval_duration {
            return Err(TraceError::InvalidShape("interval durations differ".into()));
        }
        Ok(TraceSet {
            interval_duration: self.interval_duration,
            links: self
                .links
                .iter()
                .zip(&other.links)
                .map(|(a, b)| {
                    let mut row = a.clone();
                    row.extend_from_slice(b);
                    row
                })
                .collect(),
        })
    }
}

/// Magic prefix of the compact binary trace format.
const BINARY_MAGIC: &[u8; 8] = b"DGTRACE1";

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceSet {
        TraceSet::clean(4, 6, Micros::from_secs(10)).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let t = small();
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.interval_count(), 6);
        assert_eq!(t.interval_duration(), Micros::from_secs(10));
        assert_eq!(t.duration(), Micros::from_secs(60));
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(TraceSet::clean(4, 0, Micros::from_secs(10)).is_err());
        assert!(TraceSet::clean(4, 5, Micros::ZERO).is_err());
    }

    #[test]
    fn interval_mapping_clamps_at_horizon() {
        let t = small();
        assert_eq!(t.interval_at(Micros::ZERO), 0);
        assert_eq!(t.interval_at(Micros::from_secs(9)), 0);
        assert_eq!(t.interval_at(Micros::from_secs(10)), 1);
        assert_eq!(t.interval_at(Micros::from_secs(59)), 5);
        assert_eq!(t.interval_at(Micros::from_secs(1000)), 5);
    }

    #[test]
    fn set_and_query_conditions() {
        let mut t = small();
        let e = EdgeId::new(2);
        let bad = LinkCondition::new(0.4, Micros::from_millis(7));
        t.set_condition(e, 3, bad);
        assert_eq!(t.condition_at(e, Micros::from_secs(30)), bad);
        assert_eq!(t.condition_at(e, Micros::from_secs(20)), LinkCondition::CLEAN);
        assert_eq!(t.condition_in_interval(e, 3), bad);
        let st = t.state_at(Micros::from_secs(35));
        assert_eq!(st.condition(e), bad);
        assert_eq!(st.condition(EdgeId::new(0)), LinkCondition::CLEAN);
    }

    #[test]
    fn impair_composes_loss() {
        let mut t = small();
        let e = EdgeId::new(0);
        t.impair(e, 0, LinkCondition::new(0.5, Micros::ZERO));
        t.impair(e, 0, LinkCondition::new(0.5, Micros::from_millis(1)));
        let c = t.condition_in_interval(e, 0);
        assert!((c.loss_rate - 0.75).abs() < 1e-12);
        assert_eq!(c.extra_latency, Micros::from_millis(1));
    }

    #[test]
    fn interval_starts_enumerates_all() {
        let t = small();
        let starts: Vec<_> = t.interval_starts().collect();
        assert_eq!(starts.len(), 6);
        assert_eq!(starts[0], Micros::ZERO);
        assert_eq!(starts[5], Micros::from_secs(50));
    }

    #[test]
    fn json_round_trip() {
        let mut t = small();
        t.set_condition(EdgeId::new(1), 2, LinkCondition::new(0.2, Micros::from_millis(3)));
        let dir = std::env::temp_dir().join("dg_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save_json(&path).unwrap();
        let back = TraceSet::load_json(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn slice_extracts_a_window() {
        let mut t = small();
        t.set_condition(EdgeId::new(0), 2, LinkCondition::down());
        let w = t.slice(2, 5).unwrap();
        assert_eq!(w.interval_count(), 3);
        assert_eq!(w.link_count(), 4);
        assert_eq!(w.condition_in_interval(EdgeId::new(0), 0), LinkCondition::down());
        assert_eq!(w.condition_in_interval(EdgeId::new(0), 1), LinkCondition::CLEAN);
        assert!(t.slice(3, 3).is_err());
        assert!(t.slice(0, 99).is_err());
    }

    #[test]
    fn concat_glues_weeks_together() {
        let mut a = small();
        let mut b = small();
        a.set_condition(EdgeId::new(1), 5, LinkCondition::down());
        b.set_condition(EdgeId::new(1), 0, LinkCondition::new(0.5, Micros::ZERO));
        let glued = a.concat(&b).unwrap();
        assert_eq!(glued.interval_count(), 12);
        assert_eq!(glued.condition_in_interval(EdgeId::new(1), 5), LinkCondition::down());
        assert_eq!(glued.condition_in_interval(EdgeId::new(1), 6).loss_rate, 0.5);
        // Mismatched shapes are rejected.
        let other = TraceSet::clean(3, 6, Micros::from_secs(10)).unwrap();
        assert!(a.concat(&other).is_err());
        let other = TraceSet::clean(4, 6, Micros::from_secs(5)).unwrap();
        assert!(a.concat(&other).is_err());
    }

    #[test]
    fn binary_round_trip_and_is_compact() {
        let mut t = TraceSet::clean(8, 50, Micros::from_secs(10)).unwrap();
        for l in 0..8u32 {
            for i in 0..50 {
                t.set_condition(
                    EdgeId::new(l),
                    i,
                    LinkCondition::new(
                        f64::from(l) * 0.01 + i as f64 * 0.001,
                        Micros::from_micros((l as u64) * 100 + i as u64),
                    ),
                );
            }
        }
        let dir = std::env::temp_dir().join("dg_trace_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bin_path = dir.join("trace.bin");
        let json_path = dir.join("trace.json");
        t.save_binary(&bin_path).unwrap();
        t.save_json(&json_path).unwrap();
        let back = TraceSet::load_binary(&bin_path).unwrap();
        assert_eq!(back.link_count(), 8);
        assert_eq!(back.interval_count(), 50);
        assert_eq!(back.interval_duration(), Micros::from_secs(10));
        // f32 quantization: values agree to float precision.
        for l in 0..8u32 {
            for i in 0..50 {
                let a = t.condition_in_interval(EdgeId::new(l), i);
                let b = back.condition_in_interval(EdgeId::new(l), i);
                assert!((a.loss_rate - b.loss_rate).abs() < 1e-6);
                assert_eq!(a.extra_latency, b.extra_latency);
            }
        }
        let bin_size = std::fs::metadata(&bin_path).unwrap().len();
        let json_size = std::fs::metadata(&json_path).unwrap().len();
        assert!(bin_size * 4 < json_size, "binary {bin_size} vs json {json_size}");
        std::fs::remove_file(&bin_path).unwrap();
        std::fs::remove_file(&json_path).unwrap();
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = small();
        let dir = std::env::temp_dir().join("dg_trace_bin_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.bin");
        t.save_binary(&path).unwrap();

        // Truncation.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(TraceSet::load_binary(&path), Err(TraceError::InvalidShape(_))));
        // Bad magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(TraceSet::load_binary(&path), Err(TraceError::InvalidShape(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_missing_file() {
        let err = TraceSet::load_json(FsPath::new("/nonexistent/trace.json")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        assert!(err.source().is_some());
    }
}
