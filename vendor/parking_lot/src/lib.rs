//! Offline drop-in subset of `parking_lot`.
//!
//! Thin non-poisoning wrappers over `std::sync` locks: `lock()`,
//! `read()`, and `write()` return guards directly (a poisoned std lock
//! — a panic while held — propagates the panic, matching parking_lot's
//! practical behaviour of never deadlocking the caller on poison).

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock that hands out guards without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock that hands out guards without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
