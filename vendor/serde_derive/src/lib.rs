//! Derive macros for the vendored serde subset.
//!
//! Parses the derive input by walking `proc_macro::TokenTree`s directly
//! (no `syn`/`quote`), supporting non-generic structs and enums plus
//! the attribute subset this workspace uses: `#[serde(transparent)]`,
//! `#[serde(default)]`, and `#[serde(default = "path")]`. Generated
//! impls target `serde::ser::Serialize` / `serde::de::Deserialize` from
//! the vendored `serde` crate; enums use serde's externally-tagged
//! representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    /// `Some(None)` for `#[serde(default)]`, `Some(Some(path))` for
    /// `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error token parses"),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility. `#[serde(transparent)]` parses
    // but needs no action: arity-1 tuple structs already serialize as
    // their inner value.
    loop {
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = trees.get(i + 1) {
                    let _ = parse_serde_attr(g.stream());
                    i += 2;
                } else {
                    return Err("malformed attribute".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = trees.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = trees.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde derive (vendored) does not support generics on `{name}`"));
        }
    }

    match kind.as_str() {
        "struct" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            _ => Err(format!("expected enum body for `{name}`")),
        },
        other => Err(format!("cannot derive serde traits for `{other}`")),
    }
}

/// Parses one `#[...]` attribute body; returns (field attrs, transparent).
fn parse_serde_attr(stream: TokenStream) -> (FieldAttrs, bool) {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = FieldAttrs::default();
    let mut transparent = false;
    if let Some(TokenTree::Ident(id)) = trees.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(g)) = trees.get(1) {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut j = 0;
                while j < inner.len() {
                    if let TokenTree::Ident(word) = &inner[j] {
                        match word.to_string().as_str() {
                            "transparent" => transparent = true,
                            "default" => {
                                let is_path = matches!(
                                    inner.get(j + 1),
                                    Some(TokenTree::Punct(p)) if p.as_char() == '='
                                );
                                if is_path {
                                    if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                                        let raw = lit.to_string();
                                        let path = raw.trim_matches('"').to_owned();
                                        out.default = Some(Some(path));
                                        j += 2;
                                    }
                                } else {
                                    out.default = Some(None);
                                }
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
            }
        }
    }
    (out, transparent)
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        let mut attrs = FieldAttrs::default();
        // Field attributes and visibility.
        loop {
            match trees.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = trees.get(i + 1) {
                        let (parsed, _) = parse_serde_attr(g.stream());
                        if parsed.default.is_some() {
                            attrs.default = parsed.default;
                        }
                        i += 2;
                    } else {
                        return Err("malformed field attribute".into());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = trees.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(name)) = trees.get(i) else {
            if i >= trees.len() {
                break; // trailing comma
            }
            return Err("expected field name".into());
        };
        let name = name.to_string();
        i += 1;
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut saw_tokens_since_comma = false;
    for tree in &trees {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Variant attributes.
        while let Some(TokenTree::Punct(p)) = trees.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(name)) = trees.get(i) else {
            if i >= trees.len() {
                break;
            }
            return Err("expected variant name".into());
        };
        let name = name.to_string();
        i += 1;
        let shape = match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and the separating comma.
        while i < trees.len() {
            if let TokenTree::Punct(p) = &trees[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::ser::Serialize::to_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect::<String>();
            impl_serialize(name, &format!("::serde::Value::Object(::std::vec![{entries}])"))
        }
        Item::TupleStruct { name, arity: 1, .. } => {
            impl_serialize(name, "::serde::ser::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity, .. } => {
            let entries = (0..*arity)
                .map(|k| format!("::serde::ser::Serialize::to_value(&self.{k}),"))
                .collect::<String>();
            impl_serialize(name, &format!("::serde::Value::Array(::std::vec![{entries}])"))
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let tag = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{tag} => ::serde::Value::String(\
                             ::std::string::String::from({tag:?})),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binders =
                                (0..*arity).map(|k| format!("f{k}")).collect::<Vec<_>>().join(", ");
                            let inner = if *arity == 1 {
                                "::serde::ser::Serialize::to_value(f0)".to_owned()
                            } else {
                                let items = (0..*arity)
                                    .map(|k| format!("::serde::ser::Serialize::to_value(f{k}),"))
                                    .collect::<String>();
                                format!("::serde::Value::Array(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{tag}({binders}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({tag:?}), {inner})]),"
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binders = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), \
                                         ::serde::ser::Serialize::to_value({n})),",
                                        n = f.name
                                    )
                                })
                                .collect::<String>();
                            format!(
                                "{name}::{tag} {{ {binders} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({tag:?}), \
                                 ::serde::Value::Object(::std::vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect::<String>();
            impl_serialize(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn field_expr(f: &Field) -> String {
    match &f.attrs.default {
        None => format!("::serde::de::field(value, {:?})?", f.name),
        Some(None) => {
            format!("::serde::de::field_or(value, {:?}, ::std::default::Default::default)?", f.name)
        }
        Some(Some(path)) => {
            format!("::serde::de::field_or(value, {:?}, {path})?", f.name)
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| format!("{}: {},", f.name, field_expr(f)))
                .collect::<String>();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Object(_) => \
                         ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::de::Error::unexpected(\"object\", other)),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity: 1, .. } => impl_deserialize(
            name,
            &format!(
                "::std::result::Result::Ok({name}(::serde::de::Deserialize::from_value(value)?))"
            ),
        ),
        Item::TupleStruct { name, arity, .. } => {
            let items = (0..*arity)
                .map(|k| format!("::serde::de::Deserialize::from_value(&items[{k}])?,"))
                .collect::<String>();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({items})),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::de::Error::unexpected(\"array of {arity}\", other)),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => impl_deserialize(
            name,
            &format!(
                "match value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err(\
                         ::serde::de::Error::unexpected(\"null\", other)),\n\
                 }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!("{tag:?} => ::std::result::Result::Ok({name}::{tag}),", tag = v.name)
                })
                .collect::<String>();
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let tag = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{tag:?} => ::std::result::Result::Ok({name}::{tag}(\
                             ::serde::de::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let items = (0..*arity)
                                .map(|k| {
                                    format!("::serde::de::Deserialize::from_value(&items[{k}])?,")
                                })
                                .collect::<String>();
                            Some(format!(
                                "{tag:?} => match inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {arity} => \
                                         ::std::result::Result::Ok({name}::{tag}({items})),\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::de::Error::unexpected(\
                                             \"array of {arity}\", other)),\n\
                                 }},"
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    let expr = match &f.attrs.default {
                                        None => format!("::serde::de::field(inner, {:?})?", f.name),
                                        Some(None) => format!(
                                            "::serde::de::field_or(inner, {:?}, \
                                             ::std::default::Default::default)?",
                                            f.name
                                        ),
                                        Some(Some(path)) => format!(
                                            "::serde::de::field_or(inner, {:?}, {path})?",
                                            f.name
                                        ),
                                    };
                                    format!("{}: {},", f.name, expr)
                                })
                                .collect::<String>();
                            Some(format!(
                                "{tag:?} => ::std::result::Result::Ok(\
                                 {name}::{tag} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect::<String>();
            let body = format!(
                "match value {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::de::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {data_arms}\n\
                             other => ::std::result::Result::Err(::serde::de::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::de::Error::unexpected(\"enum variant\", other)),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::de::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<{name}, ::serde::de::Error> {{ {body} }}\n\
         }}"
    )
}
