//! Serialization: rendering a type into a [`Value`].

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            #[allow(non_snake_case)]
            fn to_value(&self) -> Value {
                let ($($name,)+) = self;
                Value::Array(vec![$($name.to_value()),+])
            }
        }
    };
}

impl_ser_tuple!(A);
impl_ser_tuple!(A, B);
impl_ser_tuple!(A, B, C);
impl_ser_tuple!(A, B, C, D);
impl_ser_tuple!(A, B, C, D, E);
impl_ser_tuple!(A, B, C, D, E, F);

/// Types usable as string map keys.
pub trait SerializeKey {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for str {
    fn to_key(&self) -> String {
        self.to_owned()
    }
}

impl<T: SerializeKey + ?Sized> SerializeKey for &T {
    fn to_key(&self) -> String {
        (**self).to_key()
    }
}

macro_rules! impl_key_int {
    ($($ty:ty),*) => {$(
        impl SerializeKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

impl_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl Serialize for std::net::SocketAddr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            ("nanos".to_owned(), Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}
