//! Deserialization: rebuilding a type from a [`Value`].

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Why a value could not be turned into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error { message: message.to_string() }
    }

    /// The expected shape did not match the value found.
    pub fn unexpected(expected: &str, found: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// A required object field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can rebuild themselves from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up `name` in a derived struct's object representation,
/// returning an error naming the field when it is absent.
///
/// # Errors
///
/// Returns [`Error`] when the field is missing or mis-shaped.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => Err(Error::missing_field(name)),
    }
}

/// Like [`field`], but substitutes `default` when the field is absent.
///
/// # Errors
///
/// Returns [`Error`] when a present field is mis-shaped.
pub fn field_or<T: Deserialize>(
    value: &Value,
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => Ok(default()),
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

fn as_u64(value: &Value) -> Result<u64, Error> {
    match value {
        Value::UInt(v) => Ok(*v),
        Value::Int(v) if *v >= 0 => Ok(*v as u64),
        Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        other => Err(Error::unexpected("unsigned integer", other)),
    }
}

fn as_i64(value: &Value) -> Result<i64, Error> {
    match value {
        Value::Int(v) => Ok(*v),
        Value::UInt(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
        Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
            Ok(*f as i64)
        }
        other => Err(Error::unexpected("integer", other)),
    }
}

macro_rules! impl_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = as_u64(value)?;
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_de_signed {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = as_i64(value)?;
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(v) => Ok(*v as f64),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::unexpected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error::custom("expected single-character string")),
                }
            }
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::unexpected("string", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let got = items.len();
        items.try_into().map_err(|_| Error::custom(format!("expected array of {N}, found {got}")))
    }
}

macro_rules! impl_de_tuple {
    ($len:expr => $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::unexpected(
                        concat!("array of ", stringify!($len)), other)),
                }
            }
        }
    };
}

impl_de_tuple!(1 => A: 0);
impl_de_tuple!(2 => A: 0, B: 1);
impl_de_tuple!(3 => A: 0, B: 1, C: 2);
impl_de_tuple!(4 => A: 0, B: 1, C: 2, D: 3);
impl_de_tuple!(5 => A: 0, B: 1, C: 2, D: 3, E: 4);
impl_de_tuple!(6 => A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types usable as string map keys.
pub trait DeserializeKey: Sized {
    /// Parses a key from its string form.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the string is not a valid key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl DeserializeKey for String {
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_de_key_int {
    ($($ty:ty),*) => {$(
        impl DeserializeKey for $ty {
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(format!("invalid {} key `{key}`", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_de_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: DeserializeKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::unexpected("object", other)),
        }
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::unexpected("object", other)),
        }
    }
}

impl Deserialize for std::net::SocketAddr {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => {
                s.parse().map_err(|_| Error::custom(format!("invalid socket address `{s}`")))
            }
            other => Err(Error::unexpected("socket address string", other)),
        }
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = field(value, "secs")?;
        let nanos: u32 = field(value, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
