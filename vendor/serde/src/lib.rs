//! Offline drop-in subset of `serde`.
//!
//! Upstream serde's visitor architecture is replaced by a concrete
//! [`Value`] tree: [`Serialize`] renders a type into a `Value`,
//! [`Deserialize`] rebuilds the type from one. Formats (`serde_json`)
//! translate between `Value` and text. The derive macros in
//! `serde_derive` target these traits and understand the attribute
//! subset this workspace uses (`transparent`, `default`,
//! `default = "path"`).

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
