//! The self-describing data model shared by all formats.

/// A self-describing value: the meeting point between [`crate::Serialize`]
/// and data formats.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (only produced for negative numbers).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
