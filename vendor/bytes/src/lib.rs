//! Offline drop-in subset of the `bytes` crate.
//!
//! Implements the slice of the upstream API this workspace uses:
//! [`Bytes`] (cheaply clonable, immutable shared buffers), [`BytesMut`]
//! (an append buffer), and the [`Buf`]/[`BufMut`] cursor traits with
//! big-endian integer accessors. Semantics match upstream for that
//! subset; anything else is intentionally absent.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied here; upstream borrows, but the
    /// observable behaviour is identical for an immutable buffer).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Recovers the backing allocation when this handle is the only
    /// owner and views the whole buffer; otherwise returns the buffer
    /// unchanged. Lets buffer pools recycle allocations without unsafe
    /// code (upstream has no equivalent; offline extension).
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the allocation is shared or trimmed.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        if self.start != 0 || self.end != self.data.len() {
            return Err(self);
        }
        Arc::try_unwrap(self.data).map_err(|data| {
            let end = data.len();
            Bytes { data, start: 0, end }
        })
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A growable byte buffer for assembling messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shortens the buffer to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Resizes to `len` bytes, filling any growth with `value`.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.data.resize(len, value);
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; integer reads are big-endian.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a byte sink; integer writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_f32(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_f32(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_share_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn reclaim_unique_untrimmed_only() {
        let b = Bytes::from(vec![1, 2, 3]);
        let v = b.try_reclaim().expect("unique owner reclaims");
        assert_eq!(v, vec![1, 2, 3]);

        let b = Bytes::from(vec![1, 2, 3]);
        let clone = b.clone();
        let b = b.try_reclaim().expect_err("shared buffer is not reclaimed");
        assert_eq!(b, clone);
        drop(clone);
        assert!(b.try_reclaim().is_ok(), "last owner reclaims");

        let s = Bytes::from(vec![1, 2, 3]).slice(0..2);
        assert!(s.try_reclaim().is_err(), "trimmed view is not reclaimed");
    }

    #[test]
    fn bytes_mut_vec_conversions() {
        let mut buf = BytesMut::from(vec![9u8; 4]);
        buf.truncate(2);
        buf.resize(3, 7);
        assert_eq!(&buf[..], &[9, 9, 7]);
        buf.reserve(100);
        buf.clear();
        assert!(buf.is_empty());
        let v: Vec<u8> = BytesMut::from(vec![1, 2]).into();
        assert_eq!(v, vec![1, 2]);
    }
}
