//! Offline drop-in subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses:
//! range/tuple/vec strategies, `any::<T>()`, `prop_map`/`prop_filter`,
//! `prop_oneof!`, and the `proptest!` test macro with deterministic
//! per-test seeding and `proptest-regressions` replay files.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failing seed is persisted verbatim so the exact case replays on the
//! next run.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Discards generated values failing `keep`, redrawing instead.
        fn prop_filter<F>(self, whence: impl Into<String>, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, keep, whence: whence.into() }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        keep: F,
        whence: String,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.keep)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter `{}` rejected 10000 consecutive draws", self.whence);
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.arms.len());
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

    /// Strategy for "any value" of a type ([`any`]).
    ///
    /// [`any`]: crate::arbitrary::any
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the types it covers.

    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a full-domain default strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The default strategy for `T`, covering its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for generated collections (inclusive bounds).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { lo: len, hi: len }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(!range.is_empty(), "empty vec length range");
            SizeRange { lo: range.start, hi: range.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(!range.is_empty(), "empty vec length range");
            SizeRange { lo: *range.start(), hi: *range.end() }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case scheduling and regression persistence.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fs;
    use std::io::Write as _;
    use std::path::PathBuf;

    /// The RNG handed to strategies; seeded per case.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator whose whole stream is a function of `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Tunables for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; redraw without counting the case.
        Reject,
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection: the case is redrawn without counting.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// The result type a `proptest!` body implicitly returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Schedules case seeds (regression replays first, then fresh
    /// draws) and persists the seed of any failing case.
    pub struct Runner {
        replay: Vec<u64>,
        replay_next: usize,
        base: u64,
        cases: u32,
        completed: u32,
        attempts: u32,
        regressions: Option<PathBuf>,
    }

    impl Runner {
        /// A runner for the test `name` defined in source file `source`
        /// (as produced by `file!()`).
        pub fn new(config: &ProptestConfig, source: &str, name: &str) -> Self {
            let regressions = regression_path(source);
            let replay = regressions.as_deref().map_or_else(Vec::new, |path| {
                let Ok(text) = fs::read_to_string(path) else {
                    return Vec::new();
                };
                text.lines()
                    .filter_map(|line| line.trim().strip_prefix("cc "))
                    .filter_map(|rest| parse_seed(rest.trim()))
                    .collect()
            });
            Runner {
                replay,
                replay_next: 0,
                base: fnv1a(source) ^ fnv1a(name).rotate_left(17),
                cases: config.cases,
                completed: 0,
                attempts: 0,
                regressions,
            }
        }

        /// The next seed to run, or `None` when the quota is met.
        pub fn next_seed(&mut self) -> Option<u64> {
            if self.replay_next < self.replay.len() {
                let seed = self.replay[self.replay_next];
                self.replay_next += 1;
                return Some(seed);
            }
            if self.completed >= self.cases {
                return None;
            }
            assert!(
                self.attempts < self.cases.saturating_mul(20).max(1_000),
                "proptest: too many rejected cases ({} completed of {})",
                self.completed,
                self.cases,
            );
            let seed = splitmix(self.base.wrapping_add(u64::from(self.attempts)));
            self.attempts += 1;
            Some(seed)
        }

        /// Accounts for one case's outcome; panics (after persisting the
        /// seed) when the case failed.
        pub fn record(
            &mut self,
            seed: u64,
            outcome: std::thread::Result<Result<(), TestCaseError>>,
        ) {
            match outcome {
                Ok(Ok(())) => self.completed += 1,
                Ok(Err(TestCaseError::Reject)) => {}
                Ok(Err(TestCaseError::Fail(message))) => {
                    self.persist(seed);
                    panic!("proptest case failed (seed {seed}): {message}");
                }
                Err(payload) => {
                    self.persist(seed);
                    std::panic::resume_unwind(payload);
                }
            }
        }

        fn persist(&self, seed: u64) {
            let Some(path) = &self.regressions else { return };
            let line = format!("cc {seed}");
            if let Ok(existing) = fs::read_to_string(path) {
                if existing.lines().any(|l| l.trim() == line) {
                    return;
                }
            }
            if let Some(dir) = path.parent() {
                let _ = fs::create_dir_all(dir);
            }
            let fresh = !path.exists();
            if let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(path) {
                if fresh {
                    let _ = writeln!(
                        file,
                        "# Seeds for failure cases proptest has generated in the past.\n\
                         # It is recommended to check this file into source control so that\n\
                         # everyone who runs the test benefits from these saved cases."
                    );
                }
                let _ = writeln!(file, "{line}");
            }
        }
    }

    /// `file!()` paths are workspace-relative while test binaries run in
    /// the package directory; walk ancestors until the source resolves.
    fn regression_path(source: &str) -> Option<PathBuf> {
        let mut dir = std::env::current_dir().ok()?;
        let source_path = loop {
            let candidate = dir.join(source);
            if candidate.is_file() {
                break candidate;
            }
            if !dir.pop() {
                return None;
            }
        };
        let stem = source_path.file_stem()?.to_string_lossy().into_owned();
        Some(source_path.parent()?.join("proptest-regressions").join(format!("{stem}.txt")))
    }

    fn parse_seed(text: &str) -> Option<u64> {
        // Accept decimal or 0x-prefixed hex; ignore anything after the
        // seed so upstream-style multi-number lines stay readable.
        let first = text.split_whitespace().next()?;
        if let Some(hex) = first.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            first.parse().ok()
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `config.cases` seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::Runner::new(&config, file!(), stringify!($name));
            while let Some(seed) = runner.next_seed() {
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let case = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                };
                let outcome =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(case));
                runner.record(seed, outcome);
            }
        }
    )*};
}

/// Uniform choice among strategies producing one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Rejects the current case (redrawn without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (1u8..=255).generate(&mut rng);
            assert!(v >= 1);
            let w = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&w));
            let f = (0.0f64..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_and_seeding_are_deterministic() {
        let strat = crate::collection::vec(any::<u8>(), 0..16);
        let mut a = crate::test_runner::TestRng::from_seed(42);
        let mut b = crate::test_runner::TestRng::from_seed(42);
        for _ in 0..50 {
            let va = strat.generate(&mut a);
            let vb = strat.generate(&mut b);
            assert!(va.len() < 16);
            assert_eq!(va, vb);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_and_filters(x in 0u32..100, pair in (0u32..8, 0u32..8)
            .prop_filter("distinct", |(a, b)| a != b))
        {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            let (a, b) = pair;
            prop_assert_ne!(a, b);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            Just(77u64),
            crate::collection::vec(any::<u8>(), 1..4).prop_map(|v| v.len() as u64),
        ]) {
            prop_assert!(v < 10 || v == 77 || v < 4);
        }
    }
}
