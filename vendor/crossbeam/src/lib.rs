//! Offline drop-in subset of `crossbeam`.
//!
//! Provides `crossbeam::channel` with clonable senders *and* receivers,
//! built on `std::sync::mpsc` with the receiver behind a mutex. The
//! error enums mirror upstream so call sites match on the same
//! variants.

#![forbid(unsafe_code)]

/// Multi-producer, multi-consumer FIFO channels.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderKind::Unbounded(tx) }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    /// Creates a channel holding at most `capacity` queued messages;
    /// `send` blocks when full, `try_send` fails with
    /// [`TrySendError::Full`]. Capacity zero is a rendezvous channel.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: SenderKind::Bounded(tx) }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full;
        /// fails only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderKind::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }

        /// Sends without blocking: on a full bounded channel the value
        /// comes back in [`TrySendError::Full`] instead of waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                SenderKind::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
                }
                SenderKind::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// The receiving half of a channel; clones share the same queue.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Returns a queued message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    /// The channel is disconnected: the value could not be delivered.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a non-blocking send failed; carries the undelivered value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Why a bounded-wait receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }
}

/// Scoped threads, mapped onto `std::thread::scope`.
pub mod thread {
    /// How a scope ends: `Err` carries a child thread's panic payload.
    ///
    /// With the std backend a child panic propagates out of [`scope`]
    /// instead of surfacing here, so in practice this is always `Ok`.
    pub type ScopeResult<R> = std::thread::Result<R>;

    /// Runs `f` with a scope able to spawn threads borrowing from the
    /// caller's stack; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }

    /// Spawns threads tied to an enclosing [`scope`] call.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread; the closure receives the scope back so it
        /// can spawn siblings, matching the upstream signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx2.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = channel::bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }
}
