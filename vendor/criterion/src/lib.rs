//! Offline drop-in subset of `criterion`.
//!
//! Runs each benchmark under a small wall-clock budget and prints a
//! mean time per iteration. No statistical analysis, plots, or saved
//! baselines — just enough to execute the workspace's `[[bench]]`
//! targets and spot gross regressions.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-sample budget; keeps whole bench suites in the seconds range.
const SAMPLE_BUDGET: Duration = Duration::from_millis(4);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id, 100, routine);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, routine);
        self
    }

    /// Ends the group. (No-op; provided for API compatibility.)
    pub fn finish(self) {}
}

/// Times the routine handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut routine: F) {
    // Calibration pass: one iteration, to size batches to the budget.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let batch = (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let samples = sample_size.clamp(3, 16);
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut iters_total = 0u64;
    for _ in 0..samples {
        bencher.iters = batch;
        routine(&mut bencher);
        let per = bencher.elapsed / u32::try_from(batch).unwrap_or(u32::MAX);
        best = best.min(per);
        total += bencher.elapsed;
        iters_total += batch;
    }
    let mean = total.as_nanos() / u128::from(iters_total.max(1));
    println!("{id:<48} time: [mean {} ns/iter, best {} ns/iter]", mean, best.as_nanos());
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
