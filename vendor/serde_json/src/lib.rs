//! Offline drop-in subset of `serde_json`.
//!
//! Serializes the vendored serde [`Value`] model to JSON text and
//! parses JSON text back, covering the workspace's entry points:
//! [`to_string`], [`to_string_pretty`], [`to_writer`], [`from_str`],
//! and [`from_reader`]. Numbers round-trip exactly: integers stay
//! integers and floats use Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A serialization or parse failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Returns [`Error`] on serialization or I/O failure.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes `value` as indented JSON into `writer`.
///
/// # Errors
///
/// Returns [`Error`] on serialization or I/O failure.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a value of type `T` from a reader's JSON text.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure, malformed JSON, or a shape
/// mismatch.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

// ---------------------------------------------------------------- writing

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // Rust's Display for floats is shortest-round-trip, but an
            // integral float would print without a decimal point and
            // come back as an integer; force the marker.
            let text = f.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", byte as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(Error::new(format!("unexpected `{}` at offset {}", other as char, self.pos)))
            }
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            // Out-of-range integers fall back to f64, like serde_json's
            // arbitrary-precision-off behaviour.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let value = Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(0.25)),
            ("d".into(), Value::String("he\"llo\n".into())),
            ("e".into(), Value::Int(-3)),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(value, back);
        let pretty = to_string_pretty(&value).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(value, back2);
    }

    #[test]
    fn floats_keep_their_marker() {
        assert_eq!(to_string(&4.0f64).unwrap(), "4.0");
        let back: f64 = from_str("4.0").unwrap();
        assert_eq!(back, 4.0);
        let tiny: f64 = from_str(&to_string(&1e-300f64).unwrap()).unwrap();
        assert_eq!(tiny, 1e-300);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
