//! Offline drop-in subset of the `rand` crate.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64, so
//! `seed_from_u64` is fully deterministic across platforms. The [`Rng`]
//! trait provides the `gen_bool`/`gen_range` surface this workspace
//! uses, with rejection sampling for unbiased integer ranges.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Builds a deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A handle to a per-thread generator (seeded once per thread).
#[derive(Debug, Clone, Copy)]
pub struct ThreadRng;

thread_local! {
    static THREAD_RNG: std::cell::RefCell<rngs::StdRng> = {
        use std::hash::{BuildHasher, Hasher};
        // Seed from the thread id and wall clock via RandomState, which
        // already mixes per-process entropy.
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(0xD15E_A5E5);
        std::cell::RefCell::new(SeedableRng::seed_from_u64(h.finish()))
    };
}

/// Returns the calling thread's lazily seeded generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|rng| rng.borrow_mut().next_u64())
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to stay unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let word = rng.next_u64();
        if word <= zone {
            return word % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $ty)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $ty;
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $ty;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "biased gen_bool: {hits}");
    }
}
